"""Event-bus semantics: ordering, filtering, recording."""

import json

import pytest

from repro.sim import Environment
from repro.telemetry import install
from repro.telemetry.bus import EventBus


@pytest.fixture()
def env():
    return Environment()


def test_emit_records_and_stamps(env):
    bus = EventBus(env)
    e = bus.emit("unit", "state", uid="u1", state="Executing")
    assert e.time == 0.0 and e.seq == 0
    assert e.key == ("unit", "state")
    assert bus.events == [e]
    assert bus.emitted == 1


def test_ordering_under_simultaneous_sim_time_events(env):
    """Many processes firing at the same sim instant: sequence numbers
    impose a deterministic total order matching emission order."""
    bus = EventBus(env)

    def emitter(name, at):
        yield env.timeout(at)
        bus.emit("test", name, t=at)

    # Three processes all wake at t=5; two more at t=2.
    for name in ("a", "b", "c"):
        env.process(emitter(name, 5.0))
    for name in ("x", "y"):
        env.process(emitter(name, 2.0))
    env.run()

    assert [e.name for e in bus.events] == ["x", "y", "a", "b", "c"]
    seqs = [e.seq for e in bus.events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    # At equal times, recorded order still equals seq order.
    at5 = [e for e in bus.events if e.time == 5.0]
    assert [e.name for e in at5] == ["a", "b", "c"]


def test_subscription_filters(env):
    bus = EventBus(env)
    got = []
    sub = bus.subscribe(got.append, categories=("unit",),
                        names=("state",))
    bus.emit("unit", "state", uid="u1")
    bus.emit("unit", "submitted", uid="u1")      # name filtered out
    bus.emit("yarn", "state", uid="app1")        # category filtered out
    assert [e.payload["uid"] for e in got] == ["u1"]
    assert sub.delivered == 1

    sub.cancel()
    bus.emit("unit", "state", uid="u2")
    assert len(got) == 1


def test_predicate_filter_and_delivery_is_synchronous(env):
    bus = EventBus(env)
    seen = []
    bus.subscribe(lambda e: seen.append(e.seq),
                  predicate=lambda e: e.payload.get("n", 0) % 2 == 0)
    for n in range(4):
        bus.emit("test", "tick", n=n)
        # Synchronous delivery: matching events observed immediately.
        expected = [s for s in range(n + 1) if s % 2 == 0]
        assert seen == expected


def test_subscriber_may_subscribe_during_delivery(env):
    bus = EventBus(env)
    late = []

    def first(event):
        bus.subscribe(late.append)

    bus.subscribe(first, names=("boot",))
    bus.emit("test", "boot")
    assert late == []            # not retroactive
    bus.emit("test", "after")
    assert [e.name for e in late] == ["after"]


def test_select_and_jsonl_roundtrip(env):
    bus = EventBus(env)
    bus.emit("unit", "state", uid="u1")
    bus.emit("yarn", "container_start", container_id="c1")
    assert len(bus.select(category="unit")) == 1
    assert len(bus.select(name="container_start")) == 1
    rows = [json.loads(line) for line in bus.to_jsonl().splitlines()]
    assert rows[1]["cat"] == "yarn" and rows[1]["container_id"] == "c1"


def test_record_false_keeps_no_events(env):
    bus = EventBus(env, record=False)
    hits = []
    bus.subscribe(hits.append)
    bus.emit("test", "tick")
    assert bus.events == [] and len(hits) == 1 and bus.emitted == 1


def test_install_is_idempotent_and_uninstall_detaches(env):
    from repro import telemetry
    tel = install(env)
    assert install(env) is tel
    assert env.telemetry is tel
    telemetry.uninstall(env)
    assert env.telemetry is None
    # A fresh Environment defaults to disabled.
    assert Environment().telemetry is None
