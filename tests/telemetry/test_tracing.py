"""Tracer: span nesting, JSONL round-trip, Chrome trace_event export."""

import json

import pytest

from repro.sim import Environment
from repro.telemetry.bus import EventBus
from repro.telemetry.tracing import Tracer, spans_from_jsonl


@pytest.fixture()
def env():
    return Environment()


@pytest.fixture()
def tracer(env):
    return Tracer(env)


def _advance(env, dt):
    def proc():
        yield env.timeout(dt)
    env.process(proc())
    env.run()


def test_span_nesting_and_track_inheritance(tracer, env):
    pilot = tracer.begin("pilot.0001", cat="pilot", track="pilot pilot.0001")
    unit = tracer.begin("unit.1", cat="unit", parent=pilot, track="unit.1")
    phase = tracer.begin("execute", cat="unit.phase", parent=unit)
    assert phase.track == "unit.1"          # inherited from parent
    assert unit.parent_id == pilot.sid
    assert tracer.children_of(pilot) == [unit]
    assert tracer.children_of(unit) == [phase]

    _advance(env, 3.0)
    tracer.end(phase)
    assert phase.duration == pytest.approx(3.0)
    assert pilot.open and unit.open
    assert set(tracer.open_spans()) == {pilot, unit}


def test_end_is_idempotent(tracer, env):
    s = tracer.begin("x")
    _advance(env, 1.0)
    tracer.end(s, final_state="Done")
    _advance(env, 1.0)
    tracer.end(s, late="yes")               # keeps the first end time
    assert s.end == 1.0
    assert s.args == {"final_state": "Done", "late": "yes"}


def test_span_context_manager_records_errors(tracer):
    with tracer.span("ok"):
        pass
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    ok, boom = tracer.spans
    assert not ok.open and "error" not in ok.args
    assert "RuntimeError" in boom.args["error"]


def test_jsonl_roundtrip(tracer, env):
    a = tracer.begin("pilot.0001", cat="pilot", lrm="yarn")
    b = tracer.begin("unit.1", cat="unit", parent=a, track="unit.1")
    _advance(env, 2.5)
    tracer.end(b)
    # a stays open: round-trip must preserve end=None too.
    restored = spans_from_jsonl(tracer.to_jsonl())
    assert [(s.sid, s.name, s.cat, s.start, s.end, s.track, s.parent_id,
             s.args) for s in restored] == \
           [(s.sid, s.name, s.cat, s.start, s.end, s.track, s.parent_id,
             s.args) for s in tracer.spans]


def test_chrome_trace_export(tracer, env):
    bus = EventBus(env)
    pilot = tracer.begin("pilot.0001", cat="pilot", track="p")
    unit = tracer.begin("unit.1", cat="unit", parent=pilot, track="u")
    bus.emit("yarn", "container_start", container_id="c1")
    _advance(env, 4.0)
    tracer.end(unit)
    _advance(env, 1.0)

    doc = tracer.chrome_trace(instants=bus.events)
    # Valid trace_event JSON: serializable, with the documented keys.
    parsed = json.loads(json.dumps(doc))
    assert set(parsed) == {"traceEvents", "displayTimeUnit", "otherData"}

    events = parsed["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    instants = [e for e in events if e["ph"] == "i"]

    by_name = {e["name"]: e for e in xs}
    # Microsecond clock; the open pilot span is clipped to env.now.
    assert by_name["unit.1"]["dur"] == pytest.approx(4.0 * 1e6)
    assert by_name["pilot.0001"]["dur"] == pytest.approx(5.0 * 1e6)
    assert by_name["unit.1"]["args"]["parent"] == pilot.sid
    # Equal start: the longer (parent) span sorts first for nesting.
    assert xs.index(by_name["pilot.0001"]) < xs.index(by_name["unit.1"])

    assert instants[0]["name"] == "yarn.container_start"
    assert instants[0]["s"] == "g"

    thread_names = {m["args"]["name"] for m in metas
                    if m["name"] == "thread_name"}
    assert {"p", "u", "events"} <= thread_names
    # Distinct integer tids per track.
    tids = {e["tid"] for e in xs} | {e["tid"] for e in instants}
    assert len(tids) == 3 and all(isinstance(t, int) for t in tids)
