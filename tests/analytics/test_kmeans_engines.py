"""Cross-engine K-Means agreement: pilot vs MapReduce vs Spark vs reference.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug; plain asserts work fine.
"""

import numpy as np
import pytest

from repro.analytics import (
    generate_points,
    kmeans_reference,
    run_kmeans_mapreduce,
    run_kmeans_pilot,
    run_kmeans_spark,
)
from repro.cluster import Machine, stampede
from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
)
from repro.hdfs import HdfsCluster
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment, SeedSequenceRegistry
from repro.spark import SparkConf, SparkStandaloneCluster
from repro.yarn import YarnCluster

FAST_RMS = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                     prolog_seconds=0.5, epilog_seconds=0.2)

POINTS = generate_points(400, 6, dim=3, seed=9)
K = 6
EXPECTED = kmeans_reference(POINTS, K, iterations=2)


def pilot_stack(lrm="fork"):
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2), rms_config=FAST_RMS))
    session = Session(env, registry)
    pmgr, umgr = PilotManager(session), UnitManager(session)
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=2, runtime=600,
        agent_config=AgentConfig(lrm=lrm, bootstrap_seconds=1.0,
                                 db_connect_seconds=0.1,
                                 db_poll_interval=0.2,
                                 spawn_overhead_seconds=0.1)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    return env, umgr


def test_pilot_fork_matches_reference():
    env, umgr = pilot_stack("fork")
    holder = {}

    def driver():
        centroids, units = yield from run_kmeans_pilot(
            umgr, POINTS, K, ntasks=4, iterations=2)
        holder["c"] = centroids
        holder["units"] = units

    env.run(env.process(driver()))
    assert np.allclose(holder["c"], EXPECTED)
    # 2 iterations x (4 maps + 1 reduce)
    assert len(holder["units"]) == 10


def test_pilot_yarn_matches_reference():
    env, umgr = pilot_stack("yarn")
    holder = {}

    def driver():
        centroids, _ = yield from run_kmeans_pilot(
            umgr, POINTS, K, ntasks=4, iterations=2)
        holder["c"] = centroids

    env.run(env.process(driver()))
    assert np.allclose(holder["c"], EXPECTED)


def test_mapreduce_matches_reference():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       rng=SeedSequenceRegistry(1).stream("x"))
    yarn = YarnCluster(env, machine, machine.nodes)
    holder = {}

    def driver():
        yield env.process(hdfs.start())
        yield env.process(yarn.start())
        centroids = yield from run_kmeans_mapreduce(
            env, hdfs, yarn, POINTS, K, iterations=2, num_blocks=4)
        holder["c"] = centroids

    env.run(env.process(driver()))
    assert np.allclose(holder["c"], EXPECTED)


def test_spark_matches_reference():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    holder = {}

    def driver():
        yield env.process(cluster.start())
        ctx = yield from cluster.context(SparkConf(
            num_executors=2, executor_cores=2))
        centroids = yield from run_kmeans_spark(
            ctx, POINTS, K, iterations=2, num_partitions=4)
        holder["c"] = centroids

    env.run(env.process(driver()))
    assert np.allclose(holder["c"], EXPECTED)


def test_pilot_task_count_independent_of_result():
    env, umgr = pilot_stack("fork")
    holder = {}

    def driver():
        c8, _ = yield from run_kmeans_pilot(umgr, POINTS, K, ntasks=8,
                                            iterations=2)
        holder["c8"] = c8

    env.run(env.process(driver()))
    assert np.allclose(holder["c8"], EXPECTED)
