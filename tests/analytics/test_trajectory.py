"""Tests for the MD trajectory analysis workload."""

import numpy as np
import pytest

from repro.analytics import (
    radius_of_gyration,
    rmsd_to_reference,
    run_trajectory_analysis,
    synthesize_trajectory,
)
from repro.cluster import stampede
from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
)
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment


def test_synthesize_shape_and_determinism():
    t1 = synthesize_trajectory(20, 10, seed=3)
    t2 = synthesize_trajectory(20, 10, seed=3)
    assert t1.shape == (20, 10, 3)
    assert np.array_equal(t1, t2)
    with pytest.raises(ValueError):
        synthesize_trajectory(0, 10)


def test_rmsd_zero_against_self():
    traj = synthesize_trajectory(5, 8)
    rmsd = rmsd_to_reference(traj, traj[2])
    assert rmsd[2] == pytest.approx(0.0, abs=1e-12)
    assert np.all(rmsd >= 0)


def test_rmsd_known_value():
    ref = np.zeros((4, 3))
    frames = np.ones((1, 4, 3))  # every atom displaced by sqrt(3)
    rmsd = rmsd_to_reference(frames, ref)
    assert rmsd[0] == pytest.approx(np.sqrt(3.0))


def test_radius_of_gyration_known_value():
    # two atoms at +/-1 on x: com at 0, Rg = 1
    frames = np.array([[[1.0, 0, 0], [-1.0, 0, 0]]])
    assert radius_of_gyration(frames)[0] == pytest.approx(1.0)


def test_pilot_chunked_analysis_matches_serial():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2),
                           rms_config=RmsConfig(
                               submit_latency=0.2, schedule_interval=0.5,
                               prolog_seconds=0.5, epilog_seconds=0.2)))
    session = Session(env, registry)
    pmgr, umgr = PilotManager(session), UnitManager(session)
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=AgentConfig(bootstrap_seconds=1.0,
                                 db_connect_seconds=0.1,
                                 db_poll_interval=0.2,
                                 spawn_overhead_seconds=0.1)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))

    traj = synthesize_trajectory(60, 12, seed=5)
    holder = {}

    def driver():
        rmsd, rg = yield from run_trajectory_analysis(
            umgr, traj, ntasks=4)
        holder["rmsd"], holder["rg"] = rmsd, rg

    env.run(env.process(driver()))
    assert np.allclose(holder["rmsd"], rmsd_to_reference(traj, traj[0]))
    assert np.allclose(holder["rg"], radius_of_gyration(traj))
    assert len(holder["rmsd"]) == 60
