"""Tests for the replica-exchange workload (RepEx, paper ref [36])."""

import numpy as np
import pytest

from repro.analytics.repex import (
    exchange_probability,
    mc_run,
    potential,
    run_replica_exchange,
)
from repro.api import ComputePilotDescription, PilotState
from tests.core.test_units import fast_agent


def test_potential_double_well():
    assert potential(1.0) == 0.0
    assert potential(-1.0) == 0.0
    assert potential(0.0) == 1.0  # the barrier


def test_mc_run_deterministic_and_shaped():
    a = mc_run(-1.0, 0.2, 100, rng_seed=1)
    b = mc_run(-1.0, 0.2, 100, rng_seed=1)
    assert np.array_equal(a[0], b[0])
    assert len(a[0]) == 100
    assert a[2] >= 0.0  # energies are non-negative for this potential


def test_mc_run_temperature_validation():
    with pytest.raises(ValueError):
        mc_run(0.0, -1.0, 10, rng_seed=0)


def test_cold_replica_stays_in_well():
    samples, _, _ = mc_run(-1.0, 0.05, 2000, rng_seed=3)
    # at T=0.05 the barrier (height 1) is insurmountable in 2k steps
    assert samples.max() < 0.0


def test_hot_replica_crosses_barrier():
    samples, _, _ = mc_run(-1.0, 2.0, 2000, rng_seed=3)
    assert samples.max() > 0.5 and samples.min() < -0.5


def test_exchange_probability_properties():
    # equal energies -> always accept
    assert exchange_probability(0.1, 1.0, 0.5, 0.5) == 1.0
    # hot replica holding the lower energy -> downhill swap, accept
    assert exchange_probability(0.1, 1.0, 2.0, 0.1) == 1.0
    # cold replica already lower -> uphill, probability < 1
    p = exchange_probability(0.1, 1.0, 0.1, 2.0)
    assert 0.0 < p < 1.0


def test_replica_exchange_end_to_end(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    holder = {}

    def driver():
        holder["result"] = yield from run_replica_exchange(
            umgr, temperatures=[0.05, 0.2, 0.8, 2.0],
            rounds=4, steps_per_round=500,
            cpu_seconds_per_step=0.001)

    env.run(env.process(driver()))
    result = holder["result"]
    assert result.rounds == 4
    assert result.exchange_attempts > 0
    assert 0.0 <= result.acceptance_ratio <= 1.0
    # every temperature accumulated all its samples
    assert all(len(s) == 4 * 500 for s in result.samples_by_temperature)
    # the hot end explores both wells; mean |x| near the minima
    hot = result.samples_by_temperature[-1]
    assert hot.max() > 0.5 and hot.min() < -0.5
    # colder replicas have lower mean potential energy than the hottest
    mean_energy = [np.mean([potential(x) for x in s])
                   for s in result.samples_by_temperature]
    assert mean_energy[0] < mean_energy[-1]


def test_replica_exchange_validation(stack):
    env, registry, session, pmgr, umgr = stack
    with pytest.raises(ValueError, match="at least 2"):
        next(run_replica_exchange(umgr, [1.0]))
    with pytest.raises(ValueError, match="ascending"):
        next(run_replica_exchange(umgr, [2.0, 1.0]))
