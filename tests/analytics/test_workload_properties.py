"""Property-based tests: workloads vs their independent references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytics import (
    count_kmers_reference,
    count_triangles_local,
    count_triangles_reference,
    generate_graph,
    generate_points,
    kmeans_reference,
)
from repro.analytics.genomics import kmers_of
from repro.analytics.kmeans import _partial_sums, _update


@given(num_nodes=st.integers(5, 40),
       edge_factor=st.integers(1, 4),
       seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_triangle_count_matches_networkx_on_random_graphs(
        num_nodes, edge_factor, seed):
    max_edges = num_nodes * (num_nodes - 1) // 2
    num_edges = min(num_nodes * edge_factor, max_edges)
    edges = generate_graph(num_nodes, num_edges, seed=seed)
    assert count_triangles_local(edges) == count_triangles_reference(edges)


@given(reads=st.lists(st.text(alphabet="ACGT", min_size=1, max_size=30),
                      min_size=0, max_size=15),
       k=st.integers(1, 8))
@settings(max_examples=60)
def test_kmer_counts_conserve_and_match_counter(reads, k):
    from collections import Counter
    counts = count_kmers_reference(reads, k)
    expected = Counter()
    for read in reads:
        for i in range(len(read) - k + 1):
            expected[read[i:i + k]] += 1
    assert counts == dict(expected)
    assert sum(counts.values()) == sum(
        max(0, len(r) - k + 1) for r in reads)


@given(read=st.text(alphabet="ACGT", min_size=0, max_size=50),
       k=st.integers(1, 10))
@settings(max_examples=60)
def test_kmers_of_windows(read, k):
    kmers = kmers_of(read, k)
    assert len(kmers) == max(0, len(read) - k + 1)
    assert all(len(x) == k for x in kmers)
    for i, kmer in enumerate(kmers):
        assert read[i:i + k] == kmer


@given(n=st.integers(10, 200), k=st.integers(1, 5),
       seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_kmeans_partial_sums_compose(n, k, seed):
    """Partial sums over any split equal the whole-data sums."""
    points = generate_points(n, k, seed=seed)
    centroids = np.array(points[:k])
    whole_sums, whole_counts = _partial_sums(points, centroids)
    split = max(1, n // 3)
    parts = [points[:split], points[split:]]
    part_sums = sum(_partial_sums(p, centroids)[0] for p in parts
                    if len(p))
    part_counts = sum(_partial_sums(p, centroids)[1] for p in parts
                      if len(p))
    assert np.allclose(whole_sums, part_sums)
    assert np.allclose(whole_counts, part_counts)


@given(n=st.integers(5, 100), k=st.integers(1, 4),
       iters=st.integers(0, 4), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_kmeans_iterations_never_increase_inertia(n, k, iters, seed):
    """Lloyd's algorithm property: within-cluster SSE is non-increasing."""
    points = generate_points(n, k, seed=seed)

    def inertia(centroids):
        d = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        return float(d.min(axis=1).sum())

    prev = None
    for i in range(iters + 1):
        centroids = kmeans_reference(points, k, iterations=i)
        current = inertia(centroids)
        if prev is not None:
            assert current <= prev + 1e-9
        prev = current


@given(k=st.integers(1, 6), dim=st.integers(1, 4),
       seed=st.integers(0, 50))
@settings(max_examples=30)
def test_update_preserves_shape_and_empty_clusters(k, dim, seed):
    rng = np.random.default_rng(seed)
    centroids = rng.uniform(size=(k, dim))
    counts = rng.integers(0, 3, size=k).astype(float)
    sums = rng.uniform(size=(k, dim)) * counts[:, None]
    new = _update(centroids, sums, counts)
    assert new.shape == centroids.shape
    for j in range(k):
        if counts[j] == 0:
            assert np.array_equal(new[j], centroids[j])
