"""Tests for K-Means: reference correctness + cross-engine agreement."""

import numpy as np
import pytest

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import _assign, _partial_sums, _update


def test_generate_points_shape_and_determinism():
    a = generate_points(100, 5, dim=3, seed=1)
    b = generate_points(100, 5, dim=3, seed=1)
    c = generate_points(100, 5, dim=3, seed=2)
    assert a.shape == (100, 3)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_generate_points_validation():
    with pytest.raises(ValueError):
        generate_points(0, 5)
    with pytest.raises(ValueError):
        generate_points(10, 0)


def test_assign_nearest_centroid():
    points = np.array([[0.0, 0.0], [1.0, 1.0], [0.9, 1.1]])
    centroids = np.array([[0.0, 0.0], [1.0, 1.0]])
    labels = _assign(points, centroids)
    assert labels.tolist() == [0, 1, 1]


def test_partial_sums_against_manual():
    points = np.array([[0.0, 0.0], [2.0, 2.0], [0.2, 0.0]])
    centroids = np.array([[0.0, 0.0], [2.0, 2.0]])
    sums, counts = _partial_sums(points, centroids)
    assert counts.tolist() == [2.0, 1.0]
    assert sums[0].tolist() == [0.2, 0.0]
    assert sums[1].tolist() == [2.0, 2.0]


def test_update_keeps_empty_clusters():
    centroids = np.array([[0.0, 0.0], [5.0, 5.0]])
    sums = np.array([[2.0, 2.0], [0.0, 0.0]])
    counts = np.array([2.0, 0.0])
    new = _update(centroids, sums, counts)
    assert new[0].tolist() == [1.0, 1.0]
    assert new[1].tolist() == [5.0, 5.0]  # untouched


def test_reference_zero_iterations_returns_initial():
    points = generate_points(50, 3, seed=0)
    out = kmeans_reference(points, 3, iterations=0)
    assert np.array_equal(out, points[:3])


def test_reference_converges_on_separated_blobs():
    rng = np.random.default_rng(0)
    blob_a = rng.normal(0.0, 0.01, size=(50, 3))
    blob_b = rng.normal(10.0, 0.01, size=(50, 3)) + 10.0
    points = np.vstack([blob_a, blob_b])
    initial = np.array([[0.5, 0.5, 0.5], [15.0, 15.0, 15.0]])
    centroids = kmeans_reference(points, 2, iterations=5, initial=initial)
    assert np.allclose(centroids[0], blob_a.mean(axis=0), atol=0.05)
    assert np.allclose(centroids[1], blob_b.mean(axis=0), atol=0.05)


def test_reference_matches_scipy():
    scipy_vq = pytest.importorskip("scipy.cluster.vq")
    points = generate_points(300, 4, seed=3)
    initial = np.array(points[:4])
    ours = kmeans_reference(points, 4, iterations=15, initial=initial)
    theirs, _ = scipy_vq.kmeans(points, initial, iter=15, thresh=0.0)
    # scipy stops on convergence; compare cluster means loosely
    ours_sorted = ours[np.lexsort(ours.T)]
    theirs_sorted = theirs[np.lexsort(theirs.T)]
    assert np.allclose(ours_sorted, theirs_sorted, atol=1e-6)


def test_reference_validation():
    points = generate_points(10, 2)
    with pytest.raises(ValueError):
        kmeans_reference(points, 0)
    with pytest.raises(ValueError):
        kmeans_reference(points, 11)
    with pytest.raises(ValueError):
        kmeans_reference(points, 2, iterations=-1)
