"""Tests for the adaptive-sampling workload."""

import numpy as np
import pytest

from repro.analytics import (
    coverage,
    pick_seeds,
    run_adaptive_sampling,
    simulate_walker,
)
from repro.analytics.adaptive import DOMAIN
from repro.api import ComputePilotDescription, PilotState
from tests.core.test_units import fast_agent


def test_walker_stays_in_domain_and_deterministic():
    a = simulate_walker(5.0, 500, rng_seed=3)
    b = simulate_walker(5.0, 500, rng_seed=3)
    lo, hi = DOMAIN
    assert np.array_equal(a, b)
    assert a.min() >= lo and a.max() <= hi


def test_coverage_monotone_in_samples():
    rng = np.random.default_rng(0)
    few = rng.uniform(*DOMAIN, size=5)
    many = np.concatenate([few, rng.uniform(*DOMAIN, size=500)])
    assert coverage(many) >= coverage(few)
    assert coverage(np.empty(0)) == 0.0


def test_pick_seeds_targets_empty_bins():
    # all samples in [0, 1): the least-sampled bins are elsewhere
    samples = np.random.default_rng(1).uniform(0.0, 1.0, size=200)
    seeds = pick_seeds(samples, num_seeds=5, num_bins=20)
    assert all(s > 1.0 for s in seeds)


def test_adaptive_loop_improves_coverage(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=2, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    holder = {}

    def driver():
        samples, history = yield from run_adaptive_sampling(
            umgr, rounds=3, walkers=4, steps_per_walker=300,
            cpu_seconds_per_step=0.01)
        holder["samples"] = samples
        holder["history"] = history

    env.run(env.process(driver()))
    history = holder["history"]
    assert len(history) == 3
    # coverage never decreases and the adaptive rounds add ground
    assert all(b >= a for a, b in zip(history, history[1:], strict=False))
    assert history[-1] > history[0]
    assert len(holder["samples"]) == 3 * 4 * 300
