"""Tests for the network-science and genomics workloads.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug; plain asserts work fine.
"""

from collections import Counter

import pytest

from repro.analytics.genomics import (
    count_kmers_mapreduce,
    count_kmers_reference,
    generate_reads,
    kmers_of,
)
from repro.analytics.graphs import (
    count_triangles_local,
    count_triangles_pilot,
    count_triangles_reference,
    count_triangles_spark,
    generate_graph,
)
from repro.cluster import Machine, stampede
from repro.api import ComputePilotDescription, PilotState
from repro.hdfs import HdfsCluster
from repro.sim import Environment, SeedSequenceRegistry
from repro.spark import SparkConf, SparkStandaloneCluster
from repro.yarn import YarnCluster
from tests.core.test_units import fast_agent

EDGES = generate_graph(60, 240, seed=5)
TRUTH = count_triangles_reference(EDGES)


# --------------------------------------------------------------- graphs
def test_generate_graph_simple_and_deterministic():
    a = generate_graph(30, 60, seed=1)
    b = generate_graph(30, 60, seed=1)
    assert a == b
    assert len(a) == 60
    assert all(u < v for u, v in a)          # normalized, no self-loops
    assert len(set(a)) == len(a)             # no duplicates


def test_local_triangle_count_matches_networkx():
    assert count_triangles_local(EDGES) == TRUTH
    assert TRUTH > 0  # the test graph actually has triangles


def test_triangle_count_known_graph():
    square_with_diagonal = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
    assert count_triangles_local(square_with_diagonal) == 2
    assert count_triangles_reference(square_with_diagonal) == 2


def test_spark_triangle_count_matches_networkx():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    holder = {}

    def driver():
        yield env.process(cluster.start())
        ctx = yield from cluster.context(SparkConf(
            num_executors=2, executor_cores=2))
        holder["count"] = yield from count_triangles_spark(ctx, EDGES)

    env.run(env.process(driver()))
    assert holder["count"] == TRUTH


def test_pilot_triangle_count_matches_networkx(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=2, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    holder = {}

    def driver():
        holder["count"] = yield from count_triangles_pilot(
            umgr, EDGES, ntasks=4)

    env.run(env.process(driver()))
    assert holder["count"] == TRUTH


# ------------------------------------------------------------- genomics
def test_kmers_of():
    assert kmers_of("ACGTA", 3) == ["ACG", "CGT", "GTA"]
    assert kmers_of("AC", 3) == []
    with pytest.raises(ValueError):
        kmers_of("ACGT", 0)


def test_generate_reads_shape():
    reads = generate_reads(50, read_length=80, seed=2)
    assert len(reads) == 50
    assert all(len(r) == 80 for r in reads)
    assert set("".join(reads)) <= set("ACGT")


def test_reference_counts_conserve_total():
    reads = generate_reads(30, read_length=50, seed=3)
    k = 8
    counts = count_kmers_reference(reads, k)
    assert sum(counts.values()) == 30 * (50 - k + 1)


def test_mapreduce_kmers_match_reference():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       rng=SeedSequenceRegistry(2).stream("g"))
    yarn = YarnCluster(env, machine, machine.nodes)
    reads = generate_reads(40, read_length=60, seed=7)
    k = 6
    holder = {}

    def driver():
        yield env.process(hdfs.start())
        yield env.process(yarn.start())
        counts, job = yield from count_kmers_mapreduce(
            env, hdfs, yarn, reads, k)
        holder["counts"] = counts
        holder["job"] = job

    env.run(env.process(driver()))
    assert holder["counts"] == count_kmers_reference(reads, k)
    # the combiner collapsed duplicate kmers before the shuffle
    counters = holder["job"].counters
    assert counters.combine_output_records < counters.map_output_records
