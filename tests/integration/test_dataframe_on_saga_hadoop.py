"""§III-A end-to-end: "an application written for ... Spark (e.g.
PySpark, DataFrame and MLlib applications) can be executed on HPC
resources" via SAGA-Hadoop."""

import numpy as np
import pytest

from repro.analytics import generate_points, kmeans_reference
from repro.cluster import stampede
from repro.hadoop_deploy import SagaHadoop
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment
from repro.spark import (
    KMeansModel,
    LinearRegressionModel,
    SparkConf,
    create_dataframe,
)

FAST = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                 prolog_seconds=0.5, epilog_seconds=0.2)


@pytest.fixture()
def spark_on_hpc():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2), rms_config=FAST))
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="spark", nodes=2)
    holder = {}

    def boot():
        yield from tool.start()
        holder["ctx"] = yield from tool.spark.context(SparkConf(
            num_executors=2, executor_cores=4))

    env.run(env.process(boot()))
    yield env, tool, holder["ctx"]
    tool.stop()


def test_dataframe_application_on_saga_hadoop(spark_on_hpc):
    env, tool, ctx = spark_on_hpc
    rows = [{"sensor": f"s{i % 3}", "value": float(i)} for i in range(30)]
    df = (create_dataframe(ctx, rows, 4)
          .where(lambda r: r["value"] >= 6.0)
          .group_by("sensor")
          .agg({"value": "avg"}))
    holder = {}

    def query():
        holder["out"] = yield from df.collect()

    env.run(env.process(query()))
    out = {r["sensor"]: r["value_avg"] for r in holder["out"]}
    expected = {}
    for sensor in ("s0", "s1", "s2"):
        values = [r["value"] for r in rows
                  if r["sensor"] == sensor and r["value"] >= 6.0]
        expected[sensor] = sum(values) / len(values)
    assert out == pytest.approx(expected)


def test_mllib_application_on_saga_hadoop(spark_on_hpc):
    env, tool, ctx = spark_on_hpc
    points = generate_points(200, 3, seed=12)
    holder = {}

    def train():
        model = yield from KMeansModel.train(
            ctx.parallelize([p for p in points], 4), 3, iterations=2)
        holder["centroids"] = model.centroids

    env.run(env.process(train()))
    assert np.allclose(holder["centroids"],
                       kmeans_reference(points, 3, iterations=2))


def test_regression_application_on_saga_hadoop(spark_on_hpc):
    env, tool, ctx = spark_on_hpc
    rng = np.random.default_rng(9)
    X = rng.uniform(size=(100, 2))
    y = X @ np.array([1.5, -0.5]) + 2.0
    holder = {}

    def train():
        model = yield from LinearRegressionModel.train(
            ctx.parallelize([(x, float(t)) for x, t in zip(X, y, strict=True)], 4))
        holder["w"] = model.weights

    env.run(env.process(train()))
    assert np.allclose(holder["w"], [1.5, -0.5, 2.0], atol=1e-8)
