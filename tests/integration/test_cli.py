"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


def test_figure5_cli(capsys):
    assert main(["figure5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5 (main)" in out
    assert "RP-YARN (Mode I)" in out
    assert "Compute-Unit startup" in out


def test_figure6_quick_cli(capsys):
    assert main(["figure6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "mean RP-YARN advantage" in out
    assert out.count("OK") >= 8  # every quick-grid cell validated


def test_ablations_cli(capsys):
    assert main(["ablations"]) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "A2" in out and "A3" in out


def test_sensitivity_cli(capsys):
    assert main(["sensitivity"]) == 0
    out = capsys.readouterr().out
    assert "crossover" in out


def test_unknown_experiment_rejected():
    # main() is also the console-script entry point: usage errors come
    # back as exit code 2 rather than an escaping SystemExit.
    assert main(["figure7"]) == 2


def test_no_command_rejected():
    assert main([]) == 2


def test_bad_trace_flavor_rejected():
    assert main(["trace", "--flavor", "MPI"]) == 2


def test_bad_trace_values_rejected(capsys):
    assert main(["trace", "--points", "2", "--clusters", "8"]) == 2
    assert "error:" in capsys.readouterr().err


def test_help_exits_zero():
    assert main(["--help"]) == 0


def test_sweep_list_prints_registered_grids(capsys):
    from repro.experiments.sweeps import GRIDS
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "registered sweep grids:" in out
    for name in GRIDS:
        assert name in out, f"sweep --list omits grid {name!r}"
    assert "cells" in out


def test_bare_sweep_lists_grids_and_usage(capsys):
    assert main(["sweep"]) == 0
    out = capsys.readouterr().out
    assert "registered sweep grids:" in out
    assert "usage: python -m repro sweep GRID" in out


def test_help_and_docstring_list_every_grid(capsys):
    """The CLI help and module docstring never drift from the grid
    registry (a previous release shipped help text missing ``chaos``)."""
    import repro.__main__ as cli
    from repro.experiments.sweeps import GRIDS
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for name in GRIDS:
        assert name in out, f"--help omits sweep grid {name!r}"
        assert name in cli.__doc__, \
            f"module docstring omits sweep grid {name!r}"


def test_raptor_sweep_quick_cli(capsys):
    assert main(["sweep", "raptor", "--quick", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "sweep raptor:" in out
    assert "per-unit YARN" in out          # the headline speedup lines
    assert "equivalence" in out and "identical" in out


# ---------------------------------------------------------------------------
# Persistence verbs, resumable sweeps, and the declarative registry
# ---------------------------------------------------------------------------

import pytest


def test_registry_sanity():
    """Every verb is declared once, carries help text, and documents a
    success exit code."""
    from repro.cli import COMMANDS, REGISTRY
    names = [cmd.name for cmd in COMMANDS]
    assert len(names) == len(set(names))
    for cmd in COMMANDS:
        assert REGISTRY[cmd.name] is cmd
        assert cmd.help
        assert any(code == 0 for code, _ in cmd.exit_codes)


def test_deprecated_alias_table_matches_docs():
    from repro.cli import COMMANDS
    aliases = {(cmd.name, old)
               for cmd in COMMANDS
               for spec in cmd.args
               for old in spec.deprecated}
    assert ("sweep", "--out") in aliases
    assert ("trace", "--out") in aliases
    assert ("audit-state", "--update") in aliases


def test_deprecated_alias_warns_and_still_works(tmp_path):
    with pytest.warns(DeprecationWarning, match="--out is deprecated"):
        assert main(["sweep", "--list", "--out",
                     str(tmp_path / "ignored.json")]) == 0


def test_subcommand_help_documents_exit_codes(capsys):
    assert main(["checkpoint", "--help"]) == 0
    out = capsys.readouterr().out
    assert "exit codes" in out


def test_checkpoint_list_scenarios(capsys):
    assert main(["checkpoint", "--list"]) == 0
    out = capsys.readouterr().out
    assert "bag" in out and "raptor-stream" in out


def test_checkpoint_restore_cli_round_trip(tmp_path, capsys):
    store = str(tmp_path / "ckpt")
    assert main(["checkpoint", "bag", "--store", store, "--at", "80",
                 "--seed", "9", "--param", "ntasks=4",
                 "--param", "fault_rate=0.5"]) == 0
    out = capsys.readouterr().out
    assert "checkpointed scenario 'bag'" in out
    assert main(["restore", store, "--until", "120"]) == 0
    out = capsys.readouterr().out
    assert "state digest verified" in out
    assert "ran to t=" in out


def test_checkpoint_usage_errors(tmp_path):
    store = str(tmp_path / "ckpt")
    assert main(["checkpoint", "no-such-scenario", "--store", store]) == 2
    assert main(["checkpoint", "bag", "--store", store,
                 "--param", "missing-equals"]) == 2


def test_restore_missing_store_fails_cleanly(tmp_path, capsys):
    assert main(["restore", str(tmp_path / "nowhere")]) == 1
    assert "error:" in capsys.readouterr().err


def test_sweep_run_dir_resume_cli(tmp_path, capsys):
    run_dir = str(tmp_path / "run")
    base = ["sweep", "chaos", "--quick", "--jobs", "1",
            "--run-dir", run_dir]
    assert main(base + ["--max-cells", "2"]) == 0
    out = capsys.readouterr().out
    assert "INCOMPLETE" in out
    # same run dir without --resume is refused, not silently re-run
    assert main(base) == 1
    assert "--resume" in capsys.readouterr().err
    assert main(base + ["--resume"]) == 0
    out = capsys.readouterr().out
    assert "2 resumed" in out
    assert "INCOMPLETE" not in out
