"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


def test_figure5_cli(capsys):
    assert main(["figure5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5 (main)" in out
    assert "RP-YARN (Mode I)" in out
    assert "Compute-Unit startup" in out


def test_figure6_quick_cli(capsys):
    assert main(["figure6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "mean RP-YARN advantage" in out
    assert out.count("OK") >= 8  # every quick-grid cell validated


def test_ablations_cli(capsys):
    assert main(["ablations"]) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "A2" in out and "A3" in out


def test_sensitivity_cli(capsys):
    assert main(["sensitivity"]) == 0
    out = capsys.readouterr().out
    assert "crossover" in out


def test_unknown_experiment_rejected():
    # main() is also the console-script entry point: usage errors come
    # back as exit code 2 rather than an escaping SystemExit.
    assert main(["figure7"]) == 2


def test_no_command_rejected():
    assert main([]) == 2


def test_bad_trace_flavor_rejected():
    assert main(["trace", "--flavor", "MPI"]) == 2


def test_bad_trace_values_rejected(capsys):
    assert main(["trace", "--points", "2", "--clusters", "8"]) == 2
    assert "error:" in capsys.readouterr().err


def test_help_exits_zero():
    assert main(["--help"]) == 0
