"""Tests for the ``python -m repro`` command-line interface."""

from repro.__main__ import main


def test_figure5_cli(capsys):
    assert main(["figure5"]) == 0
    out = capsys.readouterr().out
    assert "Figure 5 (main)" in out
    assert "RP-YARN (Mode I)" in out
    assert "Compute-Unit startup" in out


def test_figure6_quick_cli(capsys):
    assert main(["figure6", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 6" in out
    assert "mean RP-YARN advantage" in out
    assert out.count("OK") >= 8  # every quick-grid cell validated


def test_ablations_cli(capsys):
    assert main(["ablations"]) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "A2" in out and "A3" in out


def test_sensitivity_cli(capsys):
    assert main(["sensitivity"]) == 0
    out = capsys.readouterr().out
    assert "crossover" in out


def test_unknown_experiment_rejected():
    # main() is also the console-script entry point: usage errors come
    # back as exit code 2 rather than an escaping SystemExit.
    assert main(["figure7"]) == 2


def test_no_command_rejected():
    assert main([]) == 2


def test_bad_trace_flavor_rejected():
    assert main(["trace", "--flavor", "MPI"]) == 2


def test_bad_trace_values_rejected(capsys):
    assert main(["trace", "--points", "2", "--clusters", "8"]) == 2
    assert "error:" in capsys.readouterr().err


def test_help_exits_zero():
    assert main(["--help"]) == 0


def test_sweep_list_prints_registered_grids(capsys):
    from repro.experiments.sweeps import GRIDS
    assert main(["sweep", "--list"]) == 0
    out = capsys.readouterr().out
    assert "registered sweep grids:" in out
    for name in GRIDS:
        assert name in out, f"sweep --list omits grid {name!r}"
    assert "cells" in out


def test_bare_sweep_lists_grids_and_usage(capsys):
    assert main(["sweep"]) == 0
    out = capsys.readouterr().out
    assert "registered sweep grids:" in out
    assert "usage: python -m repro sweep GRID" in out


def test_help_and_docstring_list_every_grid(capsys):
    """The CLI help and module docstring never drift from the grid
    registry (a previous release shipped help text missing ``chaos``)."""
    import repro.__main__ as cli
    from repro.experiments.sweeps import GRIDS
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for name in GRIDS:
        assert name in out, f"--help omits sweep grid {name!r}"
        assert name in cli.__doc__, \
            f"module docstring omits sweep grid {name!r}"


def test_raptor_sweep_quick_cli(capsys):
    assert main(["sweep", "raptor", "--quick", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert "sweep raptor:" in out
    assert "per-unit YARN" in out          # the headline speedup lines
    assert "equivalence" in out and "identical" in out
