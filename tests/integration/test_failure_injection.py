"""Failure-injection integration tests across the full stack.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug; plain asserts work fine.
"""

import numpy as np

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import run_kmeans_mapreduce
from repro.cluster import Machine, stampede
from repro.api import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
    UnitState,
)
from repro.hdfs import HdfsCluster
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment, SeedSequenceRegistry
from repro.yarn import YarnCluster

FAST_RMS = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                     prolog_seconds=0.5, epilog_seconds=0.2)


def fast_agent(**kw):
    from repro.api import AgentConfig
    defaults = dict(bootstrap_seconds=2.0, db_connect_seconds=0.2,
                    db_poll_interval=0.2, spawn_overhead_seconds=0.1)
    defaults.update(kw)
    return AgentConfig(**defaults)


def make_stack():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=3),
                           rms_config=FAST_RMS))
    session = Session(env, registry)
    return env, registry, session, PilotManager(session), \
        UnitManager(session)


# ----------------------------------------------------------- walltime kill
def test_walltime_kills_pilot_and_cancels_units():
    env, registry, session, pmgr, umgr = make_stack()
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=1.0,  # 60s walltime
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=1e6)])
    env.run(pilot.wait())
    env.run(umgr.wait_units(units))
    assert pilot.state is PilotState.DONE  # walltime is a normal end
    assert units[0].state is UnitState.CANCELED


# --------------------------------------------------- MR under node failure
def test_mapreduce_survives_replica_loss_between_jobs():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=3))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       rng=SeedSequenceRegistry(3).stream("fi"))
    yarn = YarnCluster(env, machine, machine.nodes)

    def boot():
        yield env.process(hdfs.start())
        yield env.process(yarn.start())

    env.run(env.process(boot()))
    points = generate_points(300, 5, seed=11)
    holder = {}

    def driver():
        # fail one datanode AFTER the data is loaded; replication=2
        # guarantees a surviving replica for every block
        client = hdfs.client(hdfs.master_node.name)
        from repro.analytics.kmeans import KMeansCost
        cost = KMeansCost()
        nbytes = cost.bytes_per_point_in * len(points)
        chunks = np.array_split(points, 4)
        yield env.process(client.put(
            "/kmeans/points", nbytes,
            payload_slices=[[c] for c in chunks],
            block_size=max(1.0, nbytes / 4)))
        hdfs.datanodes[1].fail()
        centroids = yield from run_kmeans_mapreduce(
            env, hdfs, yarn, points, 5, iterations=2, num_blocks=4)
        holder["c"] = centroids

    env.run(env.process(driver()))
    assert np.allclose(holder["c"],
                       kmeans_reference(points, 5, iterations=2))


# ------------------------------------------------ YARN NM loss mid-pilot
def test_yarn_pilot_unit_fails_when_its_node_dies_mid_execution():
    from repro import telemetry
    env, registry, session, pmgr, umgr = make_stack()
    tel = telemetry.install(env)
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=3, runtime=600,
        agent_config=fast_agent(lrm="yarn")))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=300.0) for _ in range(3)])
    failures = []
    tel.bus.subscribe(failures.append, categories=("yarn",),
                      names=("node_failed",))

    def killer():
        yield units[0].wait(UnitState.EXECUTING)
        yield env.timeout(5.0)
        # find the YARN cluster the agent booted and fail a busy NM
        site = registry.lookup("stampede")
        # the agent's LRM holds the cluster; locate a container node
        from repro.yarn.node_manager import NodeManager
        import gc
        nms = [o for o in gc.get_objects()
               if isinstance(o, NodeManager) and o.containers]
        if nms:
            nms[0].fail()

    env.process(killer())
    env.run(umgr.wait_units(units))
    states = sorted(u.state.value for u in units)
    # at least one unit died with its node; the agent survived
    assert "Failed" in states
    assert pilot.state is PilotState.ACTIVE
    # the node loss surfaced on the telemetry bus, live and recorded
    assert len(failures) == 1
    assert failures[0].payload["containers"] >= 1
    assert tel.bus.select("yarn", "node_failed") == failures
    counters = tel.metrics.find("yarn.nm.failures")
    assert sum(c.total for c in counters) == 1
    # the doomed container's lifecycle closed out on the bus too
    finished = tel.bus.select("yarn", "container_finished")
    assert any(e.payload["state"] == "killed" for e in finished)


# ------------------------------------------------- burst + mixed failures
def test_mixed_bag_of_good_and_bad_units():
    env, registry, session, pmgr, umgr = make_stack()
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=2, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))

    def sometimes_boom(i):
        if i % 3 == 0:
            raise RuntimeError(f"unit {i} exploded")
        return i

    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=2.0, function=sometimes_boom, args=(i,))
        for i in range(12)])
    env.run(umgr.wait_units(units))
    done = [u for u in units if u.state is UnitState.DONE]
    failed = [u for u in units if u.state is UnitState.FAILED]
    assert len(done) == 8
    assert len(failed) == 4
    assert all(u.result is not None for u in done)
    assert all("exploded" in u.stderr for u in failed)
    # the pilot keeps serving after the failures
    more = umgr.submit_units(ComputeUnitDescription(
        cores=1, function=lambda: "still alive"))
    env.run(umgr.wait_units(more))
    assert more[0].result == "still alive"


# -------------------------------------------- datanode loss + re-replication
def test_hdfs_heals_then_serves_under_further_failure():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=4))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       rng=SeedSequenceRegistry(4).stream("heal"))
    env.run(env.process(hdfs.start()))
    client = hdfs.client(None)

    def driver():
        yield env.process(client.put("/f", 64 * 1024 ** 2))
        block = hdfs.namenode.file_meta("/f").blocks[0]
        first, second = hdfs.namenode.block_map[block.block_id][:2]
        hdfs.datanode(first).fail()
        yield env.process(hdfs.namenode.handle_datanode_loss(first))
        # now kill the other original replica too: the healed copy
        # must still serve the read
        hdfs.datanode(second).fail()
        payloads = yield env.process(client.read("/f"))
        return payloads

    env.run(env.process(driver()))  # must not raise
