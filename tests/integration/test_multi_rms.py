"""Pilots end-to-end over every batch-system dialect (SLURM/Torque/SGE).

The LRM discovers its allocation from whatever the RMS exports
(SLURM_NODELIST vs PBS_NODEFILE vs PE_HOSTFILE); these tests drive the
full pilot lifecycle over each dialect, including a Mode I Hadoop
bootstrap on Torque — the paper names "PBS, SLURM or SGE" as the
schedulers SAGA-Hadoop and RADICAL-Pilot support.
"""

import pytest

from repro.cluster import stampede
from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
    UnitState,
)
from repro.hadoop_deploy import SagaHadoop
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment

FAST_RMS = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                     prolog_seconds=0.5, epilog_seconds=0.2)


def fast_agent(**kw):
    defaults = dict(bootstrap_seconds=2.0, db_connect_seconds=0.2,
                    db_poll_interval=0.2, spawn_overhead_seconds=0.1)
    defaults.update(kw)
    return AgentConfig(**defaults)


def make_site(rms_kind, hostname):
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2), rms_kind=rms_kind,
                           rms_config=FAST_RMS, hostname=hostname))
    session = Session(env, registry)
    return env, registry, session, PilotManager(session), \
        UnitManager(session)


@pytest.mark.parametrize("rms_kind,scheme", [
    ("slurm", "slurm"),
    ("torque", "torque"),
    ("torque", "pbs"),
    ("sge", "sge"),
])
def test_pilot_end_to_end_on_each_rms(rms_kind, scheme):
    env, registry, session, pmgr, umgr = make_site(rms_kind, "machine")
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource=f"{scheme}://machine", nodes=2, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    # the LRM parsed this dialect's environment correctly
    assert pilot.agent_info["cores"] == 32
    assert len(pilot.agent_info["nodes"]) == 2
    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=2.0, function=lambda: rms_kind)
        for _ in range(3)])
    env.run(umgr.wait_units(units))
    assert all(u.state is UnitState.DONE for u in units)
    assert units[0].result == rms_kind


def test_mode1_hadoop_on_torque():
    env, registry, session, pmgr, umgr = make_site("torque", "cluster")
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="pbs://cluster", nodes=2, runtime=600,
        agent_config=fast_agent(lrm="yarn")))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    assert pilot.agent_info["lrm"] == "yarn"
    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=2.0)])
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.DONE


def test_saga_hadoop_on_sge():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2), rms_kind="sge",
                           rms_config=FAST_RMS, hostname="gridengine"))
    tool = SagaHadoop(env, registry, "sge://gridengine",
                      framework="yarn", nodes=2)

    def driver():
        yield from tool.start()
        metrics = tool.yarn.resource_manager.cluster_metrics()
        assert metrics["activeNodes"] == 2
        tool.stop()
        yield tool.stopped

    env.run(env.process(driver()))
