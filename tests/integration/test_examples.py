"""Smoke tests: every shipped example must run to completion.

Each example is executed in-process (its ``main()``), capturing stdout
so failures surface as test failures rather than user-facing bitrot.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    assert set(EXAMPLES) >= {
        "quickstart", "kmeans_hadoop_on_hpc", "md_trajectory_pipeline",
        "saga_hadoop_spark", "pilot_data_workflow", "adaptive_sampling",
        "multi_domain_analytics"}


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
    assert "WRONG" not in out
    assert "FAILED" not in out
