"""Lazy-wake pipe mode: same fair-share math as the exact path.

``SharedBandwidthPipe(lazy_wakes=True)`` keeps its pending wake alive
across state changes instead of abandoning it, so the event queue stays
free of stale wake timeouts under churn.  The mode trades bit-exact
replay of the exact path's completion timestamps for that headroom —
the math is identical, only floating-point evaluation points move — so
these tests pin agreement to tight relative tolerances rather than
equality, plus sanitizer cleanliness and work conservation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import SimSanitizer
from repro.cluster.storage import SharedBandwidthPipe, StorageSpec, StorageVolume
from repro.sim import Environment


def _run_schedule(lazy, arrivals, bw=100.0, per_stream=None, latency=0.0):
    """Run a (start_delay, nbytes) schedule; return completion times."""
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=bw,
                               per_stream_bw=per_stream, latency=latency,
                               lazy_wakes=lazy)
    finish = {}

    def xfer(i, delay, size):
        yield env.timeout(delay)
        yield pipe.transfer(size)
        finish[i] = env.now

    procs = [env.process(xfer(i, d, s))
             for i, (d, s) in enumerate(arrivals)]
    env.run(env.all_of(procs))
    return [finish[i] for i in range(len(arrivals))]


@given(arrivals=st.lists(
    st.tuples(st.floats(min_value=0.0, max_value=5.0),
              st.integers(min_value=1, max_value=400)),
    min_size=1, max_size=14))
@settings(max_examples=50, deadline=None)
def test_lazy_matches_exact_on_staggered_arrivals(arrivals):
    exact = _run_schedule(False, arrivals)
    lazy = _run_schedule(True, arrivals)
    for a, b in zip(exact, lazy):
        assert b == pytest.approx(a, rel=1e-9, abs=1e-9)


def test_lazy_matches_exact_with_caps_and_latency():
    rng = random.Random(11)
    arrivals = [(rng.uniform(0, 2.0), rng.randrange(1, 1000))
                for _ in range(60)]
    exact = _run_schedule(False, arrivals, bw=250.0, per_stream=40.0,
                          latency=0.01)
    lazy = _run_schedule(True, arrivals, bw=250.0, per_stream=40.0,
                         latency=0.01)
    for a, b in zip(exact, lazy):
        assert b == pytest.approx(a, rel=1e-9, abs=1e-9)


def test_lazy_work_conservation():
    # All transfers start at t=0: the pipe is never idle while work
    # remains, so the makespan is total/bw regardless of wake strategy.
    sizes = [7, 300, 41, 500, 2, 133]
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0, lazy_wakes=True)
    finish = {}

    def xfer(i, size):
        yield pipe.transfer(size)
        finish[i] = env.now

    procs = [env.process(xfer(i, s)) for i, s in enumerate(sizes)]
    env.run(env.all_of(procs))
    assert max(finish.values()) == pytest.approx(sum(sizes) / 100.0,
                                                 rel=1e-6)


def test_lazy_mode_sanitizer_clean():
    env = Environment()
    SimSanitizer.install(env)
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0, lazy_wakes=True)
    rng = random.Random(5)

    def worker():
        for _ in range(20):
            yield pipe.transfer(rng.randrange(1, 500))

    procs = [env.process(worker()) for _ in range(8)]
    env.run(env.all_of(procs))
    env.sanitizer.assert_drained()
    assert pipe.active_streams == 0


def test_lazy_set_bandwidth_midflight_matches_exact():
    def run(lazy):
        env = Environment()
        pipe = SharedBandwidthPipe(env, aggregate_bw=100.0,
                                   lazy_wakes=lazy)
        finish = {}

        def xfer(i, size):
            yield pipe.transfer(size)
            finish[i] = env.now

        def squeeze():
            yield env.timeout(1.0)
            pipe.set_bandwidth(25.0)
            yield env.timeout(4.0)
            pipe.set_bandwidth(400.0)

        procs = [env.process(xfer(i, s))
                 for i, s in enumerate((200, 500, 900))]
        env.process(squeeze())
        env.run(env.all_of(procs))
        return [finish[i] for i in range(3)]

    exact, lazy = run(False), run(True)
    for a, b in zip(exact, lazy):
        assert b == pytest.approx(a, rel=1e-9, abs=1e-9)


def test_storage_volume_forwards_lazy_wakes():
    env = Environment()
    vol = StorageVolume(env, StorageSpec(name="t", aggregate_bw=100.0),
                        lazy_wakes=True)
    assert vol.pipe.lazy_wakes

    def reader():
        yield vol.read(250)
        return env.now

    assert env.run(env.process(reader())) == pytest.approx(2.5)


def test_exact_mode_default_untouched():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0)
    assert not pipe.lazy_wakes
