"""Equivalence of the virtual-clock pipe and the old full-scan model.

The O(log n) :class:`SharedBandwidthPipe` tracks one virtual service
clock and per-transfer finish credits; the seed implementation kept a
per-transfer ``remaining`` counter and rescanned every active transfer
on every state change.  Both describe the same exact processor-sharing
queue, so completion times must agree.  ``_ReferencePipe`` below is the
seed algorithm, kept verbatim as the test oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sanitizer import SimSanitizer
from repro.cluster.storage import (
    GB,
    MB,
    SharedBandwidthPipe,
    StorageSpec,
    StorageVolume,
)
from repro.sim import Environment
from repro.sim.engine import Event, SimulationError


class _RefTransfer:
    __slots__ = ("remaining", "event")

    def __init__(self, remaining, event):
        self.remaining = remaining
        self.event = event


class _ReferencePipe:
    """The seed's exact-PS pipe: O(n) settle, full rescan per change."""

    def __init__(self, env, aggregate_bw, per_stream_bw=None, latency=0.0):
        self.env = env
        self.aggregate_bw = float(aggregate_bw)
        self.per_stream_bw = float(per_stream_bw) if per_stream_bw else None
        self.latency = float(latency)
        self._active = {}
        self._next_id = 0
        self._last_update = env.now
        self._wake_generation = 0

    def current_rate(self):
        n = max(1, len(self._active))
        rate = self.aggregate_bw / n
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return rate

    def _single_stream_rate(self):
        rate = self.aggregate_bw
        if self.per_stream_bw is not None:
            rate = min(rate, self.per_stream_bw)
        return rate

    def transfer(self, nbytes):
        event = Event(self.env)
        if nbytes == 0:
            if self.latency > 0:
                self.env.timeout(self.latency).callbacks.append(
                    lambda _: event.succeed())
            else:
                event.succeed()
            return event
        self._settle()
        tid = self._next_id
        self._next_id += 1
        latency_bytes = self.latency * self._single_stream_rate()
        self._active[tid] = _RefTransfer(float(nbytes) + latency_bytes,
                                         event)
        self._reschedule()
        return event

    def _settle(self):
        now = self.env.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0 or not self._active:
            return
        rate = self.current_rate()
        for tr in self._active.values():
            tr.remaining -= rate * dt

    def _reschedule(self):
        self._wake_generation += 1
        if not self._active:
            return
        generation = self._wake_generation
        rate = self.current_rate()
        min_remaining = min(tr.remaining for tr in self._active.values())
        delay = max(0.0, min_remaining / rate)
        due = [tid for tid, tr in self._active.items()
               if tr.remaining <= min_remaining * (1 + 1e-12)]
        timeout = self.env.timeout(delay)

        def _on_wake(_event):
            if generation != self._wake_generation:
                return
            self._settle()
            finished = set(due)
            finished.update(tid for tid, tr in self._active.items()
                            if tr.remaining <= 1e-9)
            for tid in finished:
                self._active.pop(tid).event.succeed()
            self._reschedule()

        timeout.callbacks.append(_on_wake)


def _completion_times(make_pipe, schedule, debug=False):
    """Run ``schedule`` = [(start_delay, nbytes), ...] through a pipe;
    each worker sleeps its delay, transfers, and records env.now."""
    env = Environment()
    pipe = make_pipe(env)
    finish = {}

    def worker(i, delay, size):
        if delay > 0:
            yield env.timeout(delay)
        yield pipe.transfer(size)
        finish[i] = env.now

    procs = [env.process(worker(i, d, s))
             for i, (d, s) in enumerate(schedule)]
    env.run(env.all_of(procs))
    return finish


# Burst shapes: staggered arrivals, duplicate sizes (simultaneous
# completions), zero-byte entries (latency-only path).
_SCHEDULES = st.lists(
    st.tuples(st.sampled_from([0.0, 0.0, 0.001, 0.01, 0.25, 1.0]),
              st.sampled_from([0, 1, 7, 64, 100, 100, 4096, 10**6])),
    min_size=1, max_size=16)


@given(schedule=_SCHEDULES,
       per_stream=st.sampled_from([None, 40.0, 1000.0]),
       latency=st.sampled_from([0.0, 0.002]))
@settings(max_examples=120, deadline=None)
def test_virtual_clock_matches_reference(schedule, per_stream, latency):
    new = _completion_times(
        lambda env: SharedBandwidthPipe(
            env, aggregate_bw=100.0, per_stream_bw=per_stream,
            latency=latency),
        schedule)
    old = _completion_times(
        lambda env: _ReferencePipe(
            env, aggregate_bw=100.0, per_stream_bw=per_stream,
            latency=latency),
        schedule)
    assert new.keys() == old.keys()
    for i in new:
        assert new[i] == pytest.approx(old[i], rel=1e-9, abs=1e-9)


@given(schedule=_SCHEDULES)
@settings(max_examples=60, deadline=None)
def test_sanitized_shadow_ledger_agrees(schedule):
    """With the sanitizer installed the pipe keeps the old per-transfer
    ledger and asserts it against the credit algebra at every settle;
    any divergence raises — and results match the unchecked run."""
    def make_sanitized(env):
        SimSanitizer.install(env)
        return SharedBandwidthPipe(env, aggregate_bw=100.0, latency=0.001)

    checked = _completion_times(make_sanitized, schedule)
    plain = _completion_times(
        lambda env: SharedBandwidthPipe(env, aggregate_bw=100.0,
                                        latency=0.001),
        schedule)
    assert checked == plain


def test_pipe_debug_kwarg_is_deprecated_but_still_checks():
    """``debug=True`` warns but the per-instance ledger checks run."""
    env = Environment()
    with pytest.warns(DeprecationWarning, match="debug=True"):
        pipe = SharedBandwidthPipe(env, aggregate_bw=100.0, debug=True)

    def worker():
        yield pipe.transfer(1000.0)

    env.run(env.process(worker()))
    # When REPRO_SANITIZE already installed an env-level sanitizer it
    # takes precedence over the per-instance alias checker.
    checker = env.sanitizer or pipe._own_sanitizer
    assert checker.checks_run.get("pipe", 0) > 0


def test_transfer_many_equals_one_summed_transfer():
    """A coalesced batch is one transfer of the summed size: one
    latency charge, one completion event."""
    sizes = [100.0, 50.0, 0.0, 350.0]

    def run(make_event):
        env = Environment()
        pipe = SharedBandwidthPipe(env, aggregate_bw=100.0, latency=0.5)
        done = {}

        def worker():
            yield make_event(pipe)
            done["t"] = env.now

        env.run(env.process(worker()))
        return done["t"], pipe.bytes_moved

    batched = run(lambda pipe: pipe.transfer_many(sizes))
    summed = run(lambda pipe: pipe.transfer(sum(sizes)))
    assert batched == summed

    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0)
    with pytest.raises(SimulationError):
        pipe.transfer_many([10.0, -1.0])


def test_volume_read_write_many_accounting():
    env = Environment()
    vol = StorageVolume(env, StorageSpec(name="v", aggregate_bw=100.0,
                                         capacity=500.0))
    env.run(vol.write_many([100.0, 200.0]))
    assert vol.used == 300.0
    assert vol.write_bytes == 300.0
    env.run(vol.read_many([50.0, 50.0]))
    assert vol.read_bytes == 100.0
    with pytest.raises(SimulationError):
        vol.write_many([150.0, 100.0])  # 250 > 200 free


def test_idle_pipe_resets_virtual_clock():
    """After the pipe drains, a fresh transfer sees the same algebra as
    a fresh pipe (V reset bounds floating-point drift)."""
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0)
    times = []

    def worker():
        yield pipe.transfer(250.0)
        times.append(env.now)
        yield env.timeout(1.0)
        yield pipe.transfer(250.0)
        times.append(env.now)

    env.run(env.process(worker()))
    assert times[0] == pytest.approx(2.5)
    assert times[1] == pytest.approx(6.0)
    assert pipe.active_streams == 0


def test_many_stream_contention_exact():
    """n equal streams on an uncapped pipe all finish at n*size/bw."""
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=1 * GB)
    finish = []

    def worker():
        yield pipe.transfer(10 * MB)
        finish.append(env.now)

    procs = [env.process(worker()) for _ in range(64)]
    env.run(env.all_of(procs))
    expected = 64 * 10 * MB / (1 * GB)
    assert all(t == pytest.approx(expected) for t in finish)
