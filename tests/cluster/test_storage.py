"""Tests for the processor-sharing storage model."""

import pytest

from repro.cluster.storage import (
    GB,
    MB,
    SharedBandwidthPipe,
    StorageSpec,
    StorageVolume,
)
from repro.sim import Environment, SimulationError


def run_transfers(pipe, sizes, starts=None):
    """Helper: run transfers, return dict index -> completion time."""
    env = pipe.env
    done = {}

    def xfer(i, size, start):
        if start:
            yield env.timeout(start)
        yield pipe.transfer(size)
        done[i] = env.now

    starts = starts or [0.0] * len(sizes)
    procs = [env.process(xfer(i, s, st))
             for i, (s, st) in enumerate(zip(sizes, starts, strict=True))]
    env.run(env.all_of(procs))
    return done


def test_single_stream_full_rate():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB)
    done = run_transfers(pipe, [100 * MB])
    assert done[0] == pytest.approx(1.0, rel=1e-6)


def test_per_stream_cap_limits_single_stream():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=1000 * MB, per_stream_bw=100 * MB)
    done = run_transfers(pipe, [100 * MB])
    assert done[0] == pytest.approx(1.0, rel=1e-6)


def test_two_equal_streams_share_fairly():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB)
    done = run_transfers(pipe, [100 * MB, 100 * MB])
    # Each gets 50 MB/s -> both finish at t=2.
    assert done[0] == pytest.approx(2.0, rel=1e-6)
    assert done[1] == pytest.approx(2.0, rel=1e-6)


def test_short_stream_finishes_then_long_speeds_up():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB)
    done = run_transfers(pipe, [50 * MB, 150 * MB])
    # Shared 50/50 until short stream done at t=1 (50MB at 50MB/s);
    # long stream then has 100MB left at full 100MB/s -> t=2.
    assert done[0] == pytest.approx(1.0, rel=1e-6)
    assert done[1] == pytest.approx(2.0, rel=1e-6)


def test_staggered_arrival_slows_first_stream():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB)
    done = run_transfers(pipe, [100 * MB, 100 * MB], starts=[0.0, 0.5])
    # t in [0,0.5): A alone at 100 -> 50MB done. Then A,B share 50/50.
    # A has 50MB left -> done at t=1.5. B then alone: at t=1.5 B has
    # 100-50=50MB left -> done at 2.0.
    assert done[0] == pytest.approx(1.5, rel=1e-6)
    assert done[1] == pytest.approx(2.0, rel=1e-6)


def test_contention_with_per_stream_cap_unaffected_when_underloaded():
    env = Environment()
    # Aggregate can serve 10 streams at cap; 2 streams see no contention.
    pipe = SharedBandwidthPipe(env, aggregate_bw=1000 * MB, per_stream_bw=100 * MB)
    done = run_transfers(pipe, [100 * MB, 100 * MB])
    assert done[0] == pytest.approx(1.0, rel=1e-6)
    assert done[1] == pytest.approx(1.0, rel=1e-6)


def test_many_streams_saturate_aggregate():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB, per_stream_bw=100 * MB)
    n = 10
    done = run_transfers(pipe, [10 * MB] * n)
    # 100 MB total through a 100 MB/s pipe -> all finish at t=1.
    for i in range(n):
        assert done[i] == pytest.approx(1.0, rel=1e-6)


def test_zero_byte_transfer_costs_latency_only():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB, latency=0.25)
    done = run_transfers(pipe, [0])
    assert done[0] == pytest.approx(0.25, rel=1e-6)


def test_latency_added_to_transfer():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB, latency=0.5)
    done = run_transfers(pipe, [100 * MB])
    assert done[0] == pytest.approx(1.5, rel=1e-3)


def test_negative_size_rejected():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=1.0)
    with pytest.raises(SimulationError):
        pipe.transfer(-1)


def test_invalid_bandwidth_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        SharedBandwidthPipe(env, aggregate_bw=0)
    with pytest.raises(SimulationError):
        SharedBandwidthPipe(env, aggregate_bw=1, per_stream_bw=0)


def test_estimate_duration_matches_event_path():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB,
                               per_stream_bw=60 * MB, latency=0.1)
    est = pipe.estimate_duration(60 * MB, streams=1)
    done = run_transfers(pipe, [60 * MB])
    assert done[0] == pytest.approx(est, rel=1e-3)


def test_bytes_moved_accounting():
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB)
    run_transfers(pipe, [10 * MB, 20 * MB])
    assert pipe.bytes_moved == 30 * MB


# --------------------------------------------------------------- volumes
def _volume(env, capacity=1 * GB):
    return StorageVolume(env, StorageSpec(
        name="vol", aggregate_bw=100 * MB, capacity=capacity))


def test_volume_write_debits_capacity():
    env = Environment()
    vol = _volume(env)

    def writer():
        yield vol.write(100 * MB)

    env.run(env.process(writer()))
    assert vol.used == 100 * MB
    assert vol.free == 1 * GB - 100 * MB


def test_volume_write_overflow_raises():
    env = Environment()
    vol = _volume(env, capacity=50 * MB)
    with pytest.raises(SimulationError, match="full"):
        vol.write(100 * MB)


def test_volume_delete_restores_capacity():
    env = Environment()
    vol = _volume(env)

    def writer():
        yield vol.write(100 * MB)

    env.run(env.process(writer()))
    vol.delete(100 * MB)
    assert vol.used == 0


def test_volume_read_write_counters():
    env = Environment()
    vol = _volume(env)

    def io():
        yield vol.write(30 * MB)
        yield vol.read(10 * MB)

    env.run(env.process(io()))
    assert vol.write_bytes == 30 * MB
    assert vol.read_bytes == 10 * MB
