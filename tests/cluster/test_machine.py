"""Tests for machine templates, nodes and the interconnect."""

import pytest

from repro.cluster import Machine, stampede, wrangler
from repro.cluster.storage import GB, MB
from repro.sim import Environment, SimulationError


def test_stampede_geometry_matches_paper():
    spec = stampede(num_nodes=3)
    assert spec.cores_per_node == 16
    assert spec.memory_per_node == 32 * GB
    assert spec.cpu_speed == 1.0
    assert not spec.has_dedicated_hadoop


def test_wrangler_geometry_matches_paper():
    spec = wrangler(num_nodes=3)
    assert spec.cores_per_node == 48
    assert spec.memory_per_node == 128 * GB
    assert spec.cpu_speed > 1.0
    assert spec.has_dedicated_hadoop


def test_wrangler_faster_local_disk_than_stampede():
    assert (wrangler().local_disk.aggregate_bw
            > stampede().local_disk.aggregate_bw)


def test_machine_instantiates_nodes():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=3))
    assert len(machine.nodes) == 3
    assert machine.total_cores == 48
    assert all(n.cores_free == 16 for n in machine.nodes)


def test_machine_node_lookup():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    node = machine.nodes[1]
    assert machine.node_by_name(node.name) is node
    with pytest.raises(KeyError):
        machine.node_by_name("nope")


def test_spec_with_nodes_copy():
    spec = stampede(num_nodes=2).with_nodes(10)
    assert spec.num_nodes == 10
    assert spec.cores_per_node == 16


def test_zero_node_machine_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Machine(env, stampede(num_nodes=2).with_nodes(0))


def test_download_seconds():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=1))
    secs = machine.download_seconds(240 * MB)
    assert secs == pytest.approx(240 / 12, rel=1e-6)


def test_node_compute_seconds_scales_with_cpu_speed():
    env = Environment()
    slow = Machine(env, stampede(num_nodes=1)).nodes[0]
    fast = Machine(env, wrangler(num_nodes=1)).nodes[0]
    assert fast.compute_seconds(100.0) < slow.compute_seconds(100.0)


def test_node_core_accounting():
    env = Environment()
    node = Machine(env, stampede(num_nodes=1)).nodes[0]

    def hold():
        with node.cores.request() as req:
            yield req
            assert node.cores_in_use == 1
            assert node.cores_free == 15
            yield env.timeout(1.0)

    env.run(env.process(hold()))
    assert node.cores_in_use == 0


def test_node_memory_accounting():
    env = Environment()
    node = Machine(env, stampede(num_nodes=1)).nodes[0]

    def use():
        yield node.memory.get(10 * GB)
        assert node.memory_free == 22 * GB
        yield node.memory.put(10 * GB)

    env.run(env.process(use()))
    assert node.memory_free == 32 * GB


def test_node_failure_flag():
    env = Environment()
    node = Machine(env, stampede(num_nodes=1)).nodes[0]
    assert node.alive
    node.fail()
    assert not node.alive
    node.recover()
    assert node.alive


def test_interconnect_intra_node_cheap():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    times = {}

    def send(key, src, dst):
        yield machine.network.send(src, dst, 100 * MB)
        times[key] = env.now

    env.process(send("local", "n0", "n0"))
    env.run()
    env2 = Environment()
    machine2 = Machine(env2, stampede(num_nodes=2))

    def send2():
        yield machine2.network.send("n0", "n1", 100 * MB)
        times["remote"] = env2.now

    env2.process(send2())
    env2.run()
    assert times["local"] < times["remote"] or times["remote"] < 1.0


def test_wan_roundtrip_costs_two_latencies():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=1))
    done = []

    def rt():
        yield machine.network.wan_roundtrip()
        done.append(env.now)

    env.run(env.process(rt()))
    assert done[0] == pytest.approx(0.100, rel=1e-6)


def test_invalid_node_parameters_rejected():
    env = Environment()
    from repro.cluster.node import Node
    from repro.cluster.storage import StorageSpec
    disk = StorageSpec(name="d", aggregate_bw=1.0)
    with pytest.raises(SimulationError):
        Node(env, "x", cores=0, memory_bytes=1.0, local_disk=disk)
    with pytest.raises(SimulationError):
        Node(env, "x", cores=1, memory_bytes=0.0, local_disk=disk)
    with pytest.raises(SimulationError):
        Node(env, "x", cores=1, memory_bytes=1.0, local_disk=disk, cpu_speed=0)
