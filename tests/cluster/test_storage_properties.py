"""Property-based tests of the processor-sharing pipe.

Invariant under test: work conservation.  For any set of transfers that
all start at t=0 on an uncapped pipe, the last completion time equals
total_bytes / aggregate_bw (the pipe is never idle while work remains),
and completions are ordered by transfer size.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.storage import MB, SharedBandwidthPipe
from repro.sim import Environment


@given(sizes=st.lists(st.integers(min_value=1, max_value=500),
                      min_size=1, max_size=12))
@settings(max_examples=50, deadline=None)
def test_work_conservation(sizes):
    env = Environment()
    bw = 100.0
    pipe = SharedBandwidthPipe(env, aggregate_bw=bw)
    finish = {}

    def xfer(i, size):
        yield pipe.transfer(size)
        finish[i] = env.now

    procs = [env.process(xfer(i, s)) for i, s in enumerate(sizes)]
    env.run(env.all_of(procs))
    makespan = max(finish.values())
    assert makespan == pytest.approx(sum(sizes) / bw, rel=1e-6)


@given(sizes=st.lists(st.integers(min_value=1, max_value=500),
                      min_size=2, max_size=10))
@settings(max_examples=50, deadline=None)
def test_smaller_transfers_finish_no_later(sizes):
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0)
    finish = {}

    def xfer(i, size):
        yield pipe.transfer(size)
        finish[i] = env.now

    procs = [env.process(xfer(i, s)) for i, s in enumerate(sizes)]
    env.run(env.all_of(procs))
    # Sort by size: completion times must be non-decreasing in size.
    by_size = sorted(range(len(sizes)), key=lambda i: sizes[i])
    times = [finish[i] for i in by_size]
    assert times == sorted(times)


@given(size=st.integers(min_value=1, max_value=10**9),
       streams=st.integers(min_value=1, max_value=64))
@settings(max_examples=50)
def test_estimate_monotone_in_contention(size, streams):
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * MB, per_stream_bw=50 * MB)
    assert (pipe.estimate_duration(size, streams + 1)
            >= pipe.estimate_duration(size, streams) - 1e-9)
