"""Algebraic laws of the RDD API (property-based).

The classic functor/monoid laws that make lazy pipelines refactorable:
map fusion, filter composition, flat_map via map+flatten, union
commutativity up to multiset equality, reduce_by_key associativity.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.spark.test_rdd_properties import run, spark_ctx


def f(x):
    return x * 2 + 1


def g(x):
    return x * x - 3


@given(data=st.lists(st.integers(-30, 30), max_size=40),
       parts=st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_map_fusion(data, parts):
    """map(f).map(g) == map(g . f)."""
    env, ctx = spark_ctx()
    fused = run(env, ctx.parallelize(data, parts)
                .map(lambda x: g(f(x))).collect())
    env2, ctx2 = spark_ctx()
    chained = run(env2, ctx2.parallelize(data, parts)
                  .map(f).map(g).collect())
    assert Counter(fused) == Counter(chained)


@given(data=st.lists(st.integers(-30, 30), max_size=40),
       parts=st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_filter_composition(data, parts):
    """filter(p).filter(q) == filter(p and q)."""
    p = lambda x: x % 2 == 0
    q = lambda x: x > 0
    env, ctx = spark_ctx()
    chained = run(env, ctx.parallelize(data, parts)
                  .filter(p).filter(q).collect())
    env2, ctx2 = spark_ctx()
    combined = run(env2, ctx2.parallelize(data, parts)
                   .filter(lambda x: p(x) and q(x)).collect())
    assert Counter(chained) == Counter(combined)


@given(data=st.lists(st.integers(0, 20), max_size=30),
       parts=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_flat_map_equals_map_then_flatten(data, parts):
    expand = lambda x: [x] * (x % 3)
    env, ctx = spark_ctx()
    flat = run(env, ctx.parallelize(data, parts)
               .flat_map(expand).collect())
    expected = [y for x in data for y in expand(x)]
    assert Counter(flat) == Counter(expected)


@given(a=st.lists(st.integers(-10, 10), max_size=20),
       b=st.lists(st.integers(-10, 10), max_size=20))
@settings(max_examples=20, deadline=None)
def test_union_multiset_commutative(a, b):
    env, ctx = spark_ctx()
    ab = run(env, ctx.parallelize(a, 2).union(
        ctx.parallelize(b, 2)).collect())
    env2, ctx2 = spark_ctx()
    ba = run(env2, ctx2.parallelize(b, 2).union(
        ctx2.parallelize(a, 2)).collect())
    assert Counter(ab) == Counter(ba) == Counter(a) + Counter(b)


@given(pairs=st.lists(st.tuples(st.sampled_from("abc"),
                                st.integers(-10, 10)), max_size=30),
       parts=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_reduce_by_key_partition_invariant(pairs, parts):
    """The result must not depend on the partition count."""
    env, ctx = spark_ctx()
    one = dict(run(env, ctx.parallelize(pairs, 1)
                   .reduce_by_key(lambda a, b: a + b).collect()))
    env2, ctx2 = spark_ctx()
    many = dict(run(env2, ctx2.parallelize(pairs, parts)
                    .reduce_by_key(lambda a, b: a + b).collect()))
    assert one == many


@given(data=st.lists(st.integers(0, 50), min_size=1, max_size=30))
@settings(max_examples=20, deadline=None)
def test_collect_preserves_input_order(data):
    """Contiguous slicing: collect returns the original order."""
    env, ctx = spark_ctx()
    assert run(env, ctx.parallelize(data, 4).collect()) == data
