"""RDD ids are session-scoped, not process-global.

The seed allocated RDD ids from a module-global ``itertools.count``, so
the ids (and therefore shuffle ids) an application saw depended on what
had run earlier in the process — a hermeticity leak for parallel sweep
cells sharing a worker.  Ids now come from the owning SparkContext.
"""

from tests.spark.test_spark import make_spark, run


def test_fresh_context_numbers_rdds_from_one():
    env1, _, ctx1 = make_spark()
    a = ctx1.parallelize(range(10), 2)
    b = a.map(lambda x: x + 1)
    assert (a.rdd_id, b.rdd_id) == (1, 2)

    # A second context in the same process starts over at 1, no matter
    # how many RDDs the first one allocated.
    env2, _, ctx2 = make_spark()
    c = ctx2.parallelize(range(10), 2)
    assert c.rdd_id == 1


def test_shuffle_ids_hermetic_across_contexts():
    """Same program -> same shuffle ids, independent of prior work."""

    def build_and_run():
        env, _, ctx = make_spark()
        rdd = (ctx.parallelize([(i % 5, 1) for i in range(40)], 4)
               .reduce_by_key(lambda a, b: a + b))
        result = sorted(run(env, rdd.collect()))
        return rdd.shuffle_id, result

    first_id, first = build_and_run()
    second_id, second = build_and_run()
    assert first_id == second_id
    assert first == second == [(k, 8) for k in range(5)]


def test_ids_unique_within_a_context():
    env, _, ctx = make_spark()
    rdds = [ctx.parallelize(range(4), 2) for _ in range(5)]
    ids = [r.rdd_id for r in rdds]
    assert ids == sorted(set(ids)) == list(range(1, 6))
