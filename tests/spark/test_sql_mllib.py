"""Tests for the DataFrame layer and MLlib-lite."""

import numpy as np
import pytest

from repro.analytics import generate_points, kmeans_reference
from repro.spark import (
    KMeansModel,
    LinearRegressionModel,
    col_stats,
    create_dataframe,
)
from tests.spark.test_spark_extended import make_spark, run

ROWS = [
    {"city": "austin", "temp": 35, "rain": 2},
    {"city": "austin", "temp": 39, "rain": 0},
    {"city": "lubbock", "temp": 31, "rain": 1},
    {"city": "austin", "temp": 37, "rain": 4},
    {"city": "lubbock", "temp": 29, "rain": 3},
]


# -------------------------------------------------------------- DataFrame
def test_select_and_collect():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 2).select("city", "temp")
    rows = run(env, df.collect())
    assert all(set(r) == {"city", "temp"} for r in rows)
    assert len(rows) == 5


def test_where_and_count():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 2).where(lambda r: r["temp"] > 32)
    assert run(env, df.count()) == 3


def test_with_column():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 2).with_column(
        "temp_f", lambda r: r["temp"] * 9 / 5 + 32)
    rows = run(env, df.collect())
    assert all(r["temp_f"] == r["temp"] * 9 / 5 + 32 for r in rows)


def test_group_by_agg():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 2).group_by("city").agg(
        {"temp": "avg", "rain": "sum"})
    out = {r["city"]: r for r in run(env, df.collect())}
    assert out["austin"]["temp_avg"] == pytest.approx(37.0)
    assert out["austin"]["rain_sum"] == 6
    assert out["lubbock"]["temp_avg"] == pytest.approx(30.0)
    assert out["lubbock"]["rain_sum"] == 4


def test_group_by_count():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 2).group_by("city").count()
    out = {r["city"]: r["count"] for r in run(env, df.collect())}
    assert out == {"austin": 3, "lubbock": 2}


def test_join():
    env, cluster, ctx, _ = make_spark()
    population = [{"city": "austin", "pop": 980_000},
                  {"city": "lubbock", "pop": 260_000}]
    df = create_dataframe(ctx, ROWS, 2).join(
        create_dataframe(ctx, population, 1), on="city")
    rows = run(env, df.collect())
    assert len(rows) == 5
    assert all("pop" in r and "temp" in r for r in rows)


def test_order_by():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 3).order_by("temp")
    temps = [r["temp"] for r in run(env, df.collect())]
    assert temps == sorted(temps)


def test_show_renders_table():
    env, cluster, ctx, _ = make_spark()
    df = create_dataframe(ctx, ROWS, 2)
    text = run(env, df.show(3))
    assert "city" in text and "temp" in text
    assert len(text.splitlines()) == 5  # header + sep + 3 rows


def test_unknown_aggregate_rejected():
    env, cluster, ctx, _ = make_spark()
    with pytest.raises(ValueError, match="aggregate"):
        create_dataframe(ctx, ROWS, 1).group_by("city").agg(
            {"temp": "median"})


def test_non_dict_rows_rejected():
    env, cluster, ctx, _ = make_spark()
    with pytest.raises(TypeError, match="dicts"):
        create_dataframe(ctx, [1, 2, 3], 1)


# ------------------------------------------------------------------ MLlib
def test_mllib_kmeans_matches_reference():
    env, cluster, ctx, _ = make_spark()
    points = generate_points(300, 4, seed=6)
    rdd = ctx.parallelize([p for p in points], 4)
    model = run(env, KMeansModel.train(rdd, 4, iterations=3))
    expected = kmeans_reference(points, 4, iterations=3)
    assert np.allclose(model.centroids, expected)
    assert model.predict(expected[2]) == 2


def test_mllib_kmeans_validation():
    env, cluster, ctx, _ = make_spark()
    rdd = ctx.parallelize([[0.0, 0.0]], 1)
    with pytest.raises(ValueError):
        run(env, KMeansModel.train(rdd, 0))
    with pytest.raises(ValueError, match="at least k"):
        run(env, KMeansModel.train(rdd, 5))


def test_linear_regression_recovers_coefficients():
    env, cluster, ctx, _ = make_spark()
    rng = np.random.default_rng(4)
    X = rng.uniform(-1, 1, size=(200, 3))
    true_w = np.array([2.0, -1.0, 0.5])
    y = X @ true_w + 3.0 + rng.normal(0, 0.001, size=200)
    rows = [(x, float(label)) for x, label in zip(X, y, strict=True)]
    model = run(env, LinearRegressionModel.train(
        ctx.parallelize(rows, 4)))
    assert np.allclose(model.weights[:3], true_w, atol=0.01)
    assert model.weights[3] == pytest.approx(3.0, abs=0.01)
    assert model.predict([1.0, 1.0, 1.0]) == pytest.approx(4.5, abs=0.05)


def test_linear_regression_matches_numpy_lstsq():
    env, cluster, ctx, _ = make_spark()
    rng = np.random.default_rng(8)
    X = rng.uniform(size=(50, 2))
    y = rng.uniform(size=50)
    rows = [(x, float(label)) for x, label in zip(X, y, strict=True)]
    model = run(env, LinearRegressionModel.train(
        ctx.parallelize(rows, 3)))
    Xb = np.hstack([X, np.ones((50, 1))])
    expected, *_ = np.linalg.lstsq(Xb, y, rcond=None)
    assert np.allclose(model.weights, expected, atol=1e-8)


def test_col_stats_matches_numpy():
    env, cluster, ctx, _ = make_spark()
    rng = np.random.default_rng(2)
    X = rng.uniform(size=(120, 3))
    stats = run(env, col_stats(ctx.parallelize([r for r in X], 5)))
    assert stats.count == 120
    assert np.allclose(stats.mean, X.mean(axis=0))
    assert np.allclose(stats.variance, X.var(axis=0, ddof=1))
    assert np.allclose(stats.min, X.min(axis=0))
    assert np.allclose(stats.max, X.max(axis=0))


def test_col_stats_empty_rejected():
    env, cluster, ctx, _ = make_spark()
    with pytest.raises(ValueError, match="empty"):
        run(env, col_stats(ctx.parallelize([], 2)))
