"""Direct tests for the standalone Master/Worker allocation logic."""

import pytest

from repro.cluster import Machine, stampede
from repro.sim import Environment, SimulationError
from repro.spark import SparkMaster, SparkStandaloneCluster, SparkWorker


def make_cluster(num_nodes=2):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    env.run(env.process(cluster.start()))
    return env, cluster


def request(env, master, app_id, count, cores, memory):
    holder = {}

    def driver():
        holder["granted"] = yield from master.request_executors(
            app_id, count, cores, memory)

    env.run(env.process(driver()))
    return holder["granted"]


def test_spread_out_allocation():
    env, cluster = make_cluster(2)
    granted = request(env, cluster.master, "app1", 4, 4, 1e9)
    assert len(granted) == 4
    nodes = [e.node.name for e in granted]
    # round-robin: two executors per worker
    assert nodes.count(nodes[0]) == 2


def test_partial_grant_when_capacity_short():
    env, cluster = make_cluster(1)
    # 16 cores per node: only 2 executors of 8 cores fit
    granted = request(env, cluster.master, "app1", 5, 8, 1e9)
    assert len(granted) == 2


def test_memory_limits_grants():
    env, cluster = make_cluster(1)
    node_mem = cluster.workers[0].node.memory_bytes
    granted = request(env, cluster.master, "app1", 4, 1,
                      memory=node_mem * 0.6)
    assert len(granted) == 1


def test_release_restores_capacity():
    env, cluster = make_cluster(1)
    before = cluster.workers[0].cores_free
    request(env, cluster.master, "app1", 2, 4, 1e9)
    assert cluster.workers[0].cores_free == before - 8
    cluster.master.release_executors("app1")
    assert cluster.workers[0].cores_free == before
    assert cluster.workers[0].memory_free == \
        cluster.workers[0].node.memory_bytes


def test_release_unknown_app_noop():
    env, cluster = make_cluster(1)
    cluster.master.release_executors("ghost")  # must not raise


def test_request_on_stopped_master_rejected():
    env, cluster = make_cluster(1)
    cluster.stop()
    with pytest.raises(SimulationError, match="not running"):
        cluster.master.request_executors("a", 1, 1, 1.0).send(None)


def test_dead_worker_excluded():
    env, cluster = make_cluster(2)
    cluster.workers[0].stop()
    granted = request(env, cluster.master, "app1", 4, 4, 1e9)
    assert all(e.node is cluster.workers[1].node for e in granted)


def test_executor_ids_unique():
    env, cluster = make_cluster(2)
    a = request(env, cluster.master, "app1", 2, 2, 1e9)
    b = request(env, cluster.master, "app2", 2, 2, 1e9)
    ids = [e.executor_id for e in a + b]
    assert len(set(ids)) == 4


def test_total_cores_counts_live_workers():
    env, cluster = make_cluster(2)
    assert cluster.master.total_cores == 32
    cluster.workers[0].stop()
    assert cluster.master.total_cores == 16
