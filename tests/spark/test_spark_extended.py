"""Tests for the extended RDD API: joins, sorting, sampling, HDFS RDDs."""

from collections import Counter

import pytest

from repro.cluster import Machine, stampede
from repro.cluster.storage import MB
from repro.hdfs import HdfsCluster
from repro.sim import Environment, SeedSequenceRegistry
from repro.spark import SparkConf, SparkStandaloneCluster


def make_spark(num_nodes=2, conf=None, with_hdfs=False):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    hdfs = None
    if with_hdfs:
        hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                           rng=SeedSequenceRegistry(1).stream("s"))
    holder = {}

    def boot():
        if hdfs is not None:
            yield env.process(hdfs.start())
        yield env.process(cluster.start())
        holder["ctx"] = (yield from cluster.context(conf or SparkConf(
            num_executors=2, executor_cores=2)))

    env.run(env.process(boot()))
    return env, cluster, holder["ctx"], hdfs


def run(env, gen):
    return env.run(env.process(gen))


def test_sample_deterministic_and_bounded():
    env, cluster, ctx, _ = make_spark()
    rdd = ctx.parallelize(range(1000), 4)
    a = run(env, rdd.sample(0.3, seed=5).collect())
    b = run(env, rdd.sample(0.3, seed=5).collect())
    assert Counter(a) == Counter(b)
    assert 200 < len(a) < 400
    assert set(a) <= set(range(1000))


def test_sample_fraction_validation():
    env, cluster, ctx, _ = make_spark()
    with pytest.raises(ValueError):
        ctx.parallelize([1], 1).sample(1.5)


def test_cogroup():
    env, cluster, ctx, _ = make_spark()
    a = ctx.parallelize([("x", 1), ("y", 2), ("x", 3)], 2)
    b = ctx.parallelize([("x", "a"), ("z", "b")], 2)
    grouped = {k: (sorted(l), sorted(r)) for k, (l, r) in
               run(env, a.cogroup(b).collect())}
    assert grouped == {"x": ([1, 3], ["a"]),
                       "y": ([2], []),
                       "z": ([], ["b"])}


def test_join_matches_reference():
    env, cluster, ctx, _ = make_spark()
    a = ctx.parallelize([("x", 1), ("y", 2), ("x", 3)], 2)
    b = ctx.parallelize([("x", 10), ("x", 20), ("y", 30)], 3)
    got = sorted(run(env, a.join(b).collect()))
    expected = sorted([("x", (1, 10)), ("x", (1, 20)),
                       ("x", (3, 10)), ("x", (3, 20)),
                       ("y", (2, 30))])
    assert got == expected


def test_join_empty_intersection():
    env, cluster, ctx, _ = make_spark()
    a = ctx.parallelize([("a", 1)], 1)
    b = ctx.parallelize([("b", 2)], 1)
    assert run(env, a.join(b).collect()) == []


def test_sort_by():
    env, cluster, ctx, _ = make_spark()
    data = [5, 3, 9, 1, 7, 3]
    rdd = ctx.parallelize(data, 3)
    assert run(env, rdd.sort_by(lambda x: x).collect()) == sorted(data)
    assert run(env, rdd.sort_by(lambda x: x, ascending=False).collect()) \
        == sorted(data, reverse=True)


def test_aggregate():
    env, cluster, ctx, _ = make_spark()
    rdd = ctx.parallelize(range(1, 11), 4)
    # (sum, count) in one pass
    total, count = run(env, rdd.aggregate(
        (0, 0),
        lambda acc, x: (acc[0] + x, acc[1] + 1),
        lambda a, b: (a[0] + b[0], a[1] + b[1])))
    assert (total, count) == (55, 10)


def test_count_by_key():
    env, cluster, ctx, _ = make_spark()
    rdd = ctx.parallelize([("a", 1), ("b", 1), ("a", 9)], 2)
    assert run(env, rdd.count_by_key()) == {"a": 2, "b": 1}


def test_text_file_reads_hdfs_blocks():
    env, cluster, ctx, hdfs = make_spark(with_hdfs=True)
    client = hdfs.client(hdfs.master_node.name)
    words = [f"w{i}" for i in range(40)]
    slices = [words[:20], words[20:]]

    def load():
        yield env.process(client.put("/corpus", 20 * MB,
                                     payload_slices=slices,
                                     block_size=10 * MB))

    env.run(env.process(load()))
    rdd = ctx.text_file(hdfs, "/corpus")
    assert rdd.num_partitions == 2
    got = run(env, rdd.collect())
    assert Counter(got) == Counter(words)


def test_text_file_pipeline_with_shuffle():
    env, cluster, ctx, hdfs = make_spark(with_hdfs=True)
    client = hdfs.client(hdfs.master_node.name)
    words = ["dog", "cat", "dog", "emu", "cat", "dog"]

    def load():
        yield env.process(client.put("/w", 6 * MB,
                                     payload_slices=[words[:3], words[3:]],
                                     block_size=3 * MB))

    env.run(env.process(load()))
    counts = dict(run(env, (
        ctx.text_file(hdfs, "/w").map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b).collect())))
    assert counts == {"dog": 3, "cat": 2, "emu": 1}


def test_broadcast_value_usable_in_tasks():
    env, cluster, ctx, _ = make_spark()
    holder = {}

    def driver():
        lookup = yield from ctx.broadcast({"a": 10, "b": 20}, nbytes=1e6)
        rdd = ctx.parallelize(["a", "b", "a"], 2).map(
            lambda k, _bc=lookup: _bc.value[k])
        holder["out"] = yield from rdd.collect()

    env.run(env.process(driver()))
    assert Counter(holder["out"]) == Counter([10, 20, 10])


def test_accumulator_counts_across_tasks():
    env, cluster, ctx, _ = make_spark()
    acc = ctx.accumulator(0)

    def bump(x, _acc=acc):
        _acc.add(1)
        return x

    run(env, ctx.parallelize(range(25), 5).map(bump).collect())
    assert acc.value == 25
