"""Property-based tests: RDD semantics vs plain-Python reference."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, stampede
from repro.sim import Environment
from repro.spark import SparkConf, SparkStandaloneCluster


def spark_ctx():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    holder = {}

    def boot():
        yield env.process(cluster.start())
        holder["ctx"] = (yield from cluster.context(
            SparkConf(num_executors=2, executor_cores=2)))

    env.run(env.process(boot()))
    return env, holder["ctx"]


def run(env, gen):
    return env.run(env.process(gen))


@given(data=st.lists(st.integers(-50, 50), max_size=60),
       parts=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_collect_is_multiset_identity(data, parts):
    env, ctx = spark_ctx()
    got = run(env, ctx.parallelize(data, parts).collect())
    assert Counter(got) == Counter(data)


@given(data=st.lists(st.integers(-50, 50), max_size=60),
       parts=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_map_matches_builtin(data, parts):
    env, ctx = spark_ctx()
    got = run(env, ctx.parallelize(data, parts).map(lambda x: x * x + 1)
              .collect())
    assert Counter(got) == Counter(x * x + 1 for x in data)


@given(data=st.lists(st.integers(-50, 50), max_size=60),
       parts=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_filter_matches_builtin(data, parts):
    env, ctx = spark_ctx()
    got = run(env, ctx.parallelize(data, parts).filter(lambda x: x % 3 == 0)
              .collect())
    assert Counter(got) == Counter(x for x in data if x % 3 == 0)


@given(pairs=st.lists(st.tuples(st.sampled_from("abcde"),
                                st.integers(-20, 20)), max_size=60),
       parts=st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_reduce_by_key_matches_counter(pairs, parts):
    env, ctx = spark_ctx()
    got = dict(run(env, ctx.parallelize(pairs, parts)
                   .reduce_by_key(lambda a, b: a + b).collect()))
    expected = {}
    for k, v in pairs:
        expected[k] = expected.get(k, 0) + v
    assert got == expected


@given(pairs=st.lists(st.tuples(st.sampled_from("abc"),
                                st.integers(0, 9)), max_size=40),
       parts=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_group_by_key_matches_reference(pairs, parts):
    env, ctx = spark_ctx()
    got = {k: sorted(v) for k, v in
           run(env, ctx.parallelize(pairs, parts).group_by_key().collect())}
    expected = {}
    for k, v in pairs:
        expected.setdefault(k, []).append(v)
    assert got == {k: sorted(v) for k, v in expected.items()}


@given(data=st.lists(st.integers(0, 100), min_size=1, max_size=50),
       parts=st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_count_and_reduce_consistent(data, parts):
    env, ctx = spark_ctx()
    rdd = ctx.parallelize(data, parts)
    assert run(env, rdd.count()) == len(data)
    assert run(env, rdd.reduce(lambda a, b: a + b)) == sum(data)


@given(data=st.lists(st.integers(0, 20), max_size=40),
       parts=st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_distinct_matches_set(data, parts):
    env, ctx = spark_ctx()
    got = run(env, ctx.parallelize(data, parts).distinct().collect())
    assert sorted(got) == sorted(set(data))
