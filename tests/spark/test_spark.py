"""Tests for the Spark standalone cluster and RDD engine."""

import pytest

from repro.cluster import Machine, stampede
from repro.sim import Environment, SimulationError
from repro.spark import SparkConf, SparkStandaloneCluster


def make_spark(num_nodes=2, conf=None):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    holder = {}

    def boot():
        yield env.process(cluster.start())
        ctx = yield from cluster.context(conf or SparkConf(
            num_executors=2, executor_cores=2))
        holder["ctx"] = ctx

    env.run(env.process(boot()))
    return env, cluster, holder["ctx"]


def run(env, gen):
    return env.run(env.process(gen))


def test_cluster_start_costs_time():
    env, cluster, ctx = make_spark()
    assert cluster.running
    # master 4s + workers 3s + executor launch 4s
    assert env.now == pytest.approx(11.0)


def test_parallelize_collect_roundtrip():
    env, cluster, ctx = make_spark()
    data = list(range(100))
    rdd = ctx.parallelize(data, 4)
    assert sorted(run(env, rdd.collect())) == data


def test_map_filter_chain():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize(range(20), 3).map(lambda x: x * 2).filter(
        lambda x: x % 4 == 0)
    expected = sorted(x * 2 for x in range(20) if (x * 2) % 4 == 0)
    assert sorted(run(env, rdd.collect())) == expected


def test_flat_map():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize(["a b", "c d e"], 2).flat_map(str.split)
    assert sorted(run(env, rdd.collect())) == ["a", "b", "c", "d", "e"]


def test_map_partitions():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize(range(10), 2).map_partitions(
        lambda it: [sum(it)])
    parts = run(env, rdd.collect())
    assert sum(parts) == sum(range(10))
    assert len(parts) == 2


def test_count_and_take():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize(range(57), 5)
    assert run(env, rdd.count()) == 57
    taken = run(env, rdd.take(5))
    assert len(taken) == 5


def test_reduce():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize(range(1, 11), 3)
    assert run(env, rdd.reduce(lambda a, b: a + b)) == 55


def test_reduce_empty_raises():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize([], 2)
    with pytest.raises(ValueError, match="empty"):
        run(env, rdd.reduce(lambda a, b: a + b))


def test_reduce_by_key():
    env, cluster, ctx = make_spark()
    pairs = [("a", 1), ("b", 2), ("a", 3), ("c", 4), ("b", 5)]
    rdd = ctx.parallelize(pairs, 3).reduce_by_key(lambda a, b: a + b)
    assert dict(run(env, rdd.collect())) == {"a": 4, "b": 7, "c": 4}


def test_group_by_key():
    env, cluster, ctx = make_spark()
    pairs = [("x", 1), ("y", 2), ("x", 3)]
    rdd = ctx.parallelize(pairs, 2).group_by_key()
    grouped = {k: sorted(v) for k, v in run(env, rdd.collect())}
    assert grouped == {"x": [1, 3], "y": [2]}


def test_distinct():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize([1, 2, 2, 3, 3, 3], 3).distinct()
    assert sorted(run(env, rdd.collect())) == [1, 2, 3]


def test_union():
    env, cluster, ctx = make_spark()
    a = ctx.parallelize([1, 2], 1)
    b = ctx.parallelize([3, 4], 2)
    assert sorted(run(env, a.union(b).collect())) == [1, 2, 3, 4]


def test_wordcount_pipeline():
    env, cluster, ctx = make_spark()
    lines = ["the quick brown fox", "the lazy dog", "the fox"]
    counts = dict(run(env, (
        ctx.parallelize(lines, 2)
        .flat_map(str.split)
        .map(lambda w: (w, 1))
        .reduce_by_key(lambda a, b: a + b)
        .collect())))
    assert counts == {"the": 3, "quick": 1, "brown": 1, "fox": 2,
                      "lazy": 1, "dog": 1}


def test_chained_shuffles():
    env, cluster, ctx = make_spark()
    pairs = [("a", 1), ("a", 2), ("b", 3)]
    rdd = (ctx.parallelize(pairs, 2)
           .reduce_by_key(lambda a, b: a + b)     # ("a",3), ("b",3)
           .map(lambda kv: (kv[1], kv[0]))        # (3,"a"), (3,"b")
           .group_by_key())
    result = {k: sorted(v) for k, v in run(env, rdd.collect())}
    assert result == {3: ["a", "b"]}


def test_shuffle_requires_pairs():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize([1, 2, 3], 2).reduce_by_key(lambda a, b: a)
    with pytest.raises(TypeError, match="pairs"):
        run(env, rdd.collect())


def test_cache_avoids_recompute():
    env, cluster, ctx = make_spark()
    calls = []

    def tracked(x):
        calls.append(x)
        return x

    rdd = ctx.parallelize(range(10), 2).map(tracked).cache()
    run(env, rdd.count())
    first = len(calls)
    run(env, rdd.count())
    assert len(calls) == first  # second action served from cache


def test_uncached_recomputes():
    env, cluster, ctx = make_spark()
    calls = []

    def tracked(x):
        calls.append(x)
        return x

    rdd = ctx.parallelize(range(10), 2).map(tracked)
    run(env, rdd.count())
    run(env, rdd.count())
    assert len(calls) == 20


def test_shuffle_reuse_across_actions():
    env, cluster, ctx = make_spark()
    rdd = ctx.parallelize([("a", 1), ("a", 2)], 2).reduce_by_key(
        lambda a, b: a + b)
    run(env, rdd.collect())
    n_outputs = len(ctx._shuffle_outputs)
    run(env, rdd.collect())
    assert len(ctx._shuffle_outputs) == n_outputs  # not re-run


def test_cpu_cost_scales_runtime():
    env1, _, ctx1 = make_spark()
    t0 = env1.now
    run(env1, ctx1.parallelize(range(100), 2).count())
    cheap = env1.now - t0

    conf = SparkConf(num_executors=2, executor_cores=2,
                     cpu_seconds_per_record=0.5)
    env2, _, ctx2 = make_spark(conf=conf)
    t0 = env2.now
    run(env2, ctx2.parallelize(range(100), 2).count())
    costly = env2.now - t0
    assert costly > cheap + 1.0


def test_executor_capacity_respected():
    env, cluster, ctx = make_spark()
    # 2 executors x 2 cores = 4 slots; 8 tasks of 1s CPU each need 2 waves
    conf_records_per_part = 1
    for executor in ctx.executors:
        assert executor.slots.capacity == 2


def test_stop_releases_executors():
    env, cluster, ctx = make_spark()
    worker_cores_before = [w.cores_free for w in cluster.workers]
    ctx.stop()
    worker_cores_after = [w.cores_free for w in cluster.workers]
    assert sum(worker_cores_after) > sum(worker_cores_before)
    with pytest.raises(SimulationError):
        run(env, ctx.parallelize([1], 1).collect())


def test_no_capacity_no_executors():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=1))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)

    def boot():
        yield env.process(cluster.start())
        with pytest.raises(SimulationError, match="no executors"):
            yield from cluster.context(SparkConf(
                num_executors=1, executor_cores=64))  # node has 16

    env.run(env.process(boot()))


def test_master_stop_all():
    env, cluster, ctx = make_spark()
    cluster.stop()
    assert not cluster.master.running
    assert all(not w.running for w in cluster.workers)
