"""Tests for the SAGA-Hadoop tool and framework plugins."""

import pytest

from repro.cluster import Machine, stampede, wrangler
from repro.hadoop_deploy import (
    FrameworkPlugin,
    SagaHadoop,
    provision_dedicated_hadoop,
    register_plugin,
)
from repro.hadoop_deploy.plugins import make_plugin
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment, SimulationError
from repro.spark import SparkConf
from repro.yarn import AppSpec, ApplicationState, YarnResource

FAST = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                 prolog_seconds=0.5, epilog_seconds=0.2)


@pytest.fixture()
def testbed():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=3), rms_config=FAST))
    registry.register(Site(env, wrangler(num_nodes=2), rms_config=FAST,
                           hostname="wrangler"))
    return env, registry


def test_yarn_cluster_lifecycle(testbed):
    env, registry = testbed
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="yarn", nodes=2)

    def driver():
        yield from tool.start()
        metrics = tool.yarn.resource_manager.cluster_metrics()
        assert metrics["activeNodes"] == 2
        assert tool.hdfs.running
        tool.stop()
        yield tool.stopped

    env.run(env.process(driver()))
    assert not tool.yarn.running


def test_yarn_application_on_saga_hadoop_cluster(testbed):
    env, registry = testbed
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="yarn", nodes=2)
    outcome = {}

    def am(ctx):
        ctx.request_containers(1, YarnResource(1024, 1))
        got = yield from ctx.wait_for_containers(1)

        def task(env_, c):
            yield env_.timeout(2.0)

        yield ctx.start_container(got[0], task)
        ctx.finish("SUCCEEDED")

    def driver():
        yield from tool.start()
        client = tool.yarn.client()
        app = yield from client.submit(AppSpec(
            name="probe", am_resource=YarnResource(512, 1), am_program=am))
        report = yield from client.wait_for_completion(app)
        outcome["state"] = report.state
        tool.stop()
        yield tool.stopped

    env.run(env.process(driver()))
    assert outcome["state"] is ApplicationState.FINISHED


def test_spark_cluster_lifecycle(testbed):
    env, registry = testbed
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="spark", nodes=2)
    result = {}

    def driver():
        yield from tool.start()
        ctx = yield from tool.spark.context(SparkConf(
            num_executors=2, executor_cores=2))
        total = yield from ctx.parallelize(range(10), 2).reduce(
            lambda a, b: a + b)
        result["sum"] = total
        tool.stop()
        yield tool.stopped

    env.run(env.process(driver()))
    assert result["sum"] == 45


def test_configs_rendered(testbed):
    env, registry = testbed
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="yarn", nodes=2)

    def driver():
        yield from tool.start()
        tool.stop()
        yield tool.stopped

    env.run(env.process(driver()))
    configs = tool.plugin.rendered_configs
    assert "core-site.xml" in configs
    assert "yarn-site.xml" in configs
    assert "slaves" in configs
    assert "hdfs://" in configs["core-site.xml"]
    assert len(configs["slaves"].strip().splitlines()) == 2


def test_unknown_framework_rejected(testbed):
    env, registry = testbed
    with pytest.raises(ValueError, match="unknown framework"):
        SagaHadoop(env, registry, "slurm://stampede",
                   framework="flink").start().send(None)


def test_plugin_registration(testbed):
    env, registry = testbed

    class FlinkPlugin(FrameworkPlugin):
        name = "flink"

        def start_daemons(self, nodes):
            self.flink_started = True
            if False:
                yield None

        def stop(self):
            pass

    register_plugin("flink", FlinkPlugin)
    site = registry.lookup("stampede")
    plugin = make_plugin("flink", env, site)
    assert isinstance(plugin, FlinkPlugin)


def test_cluster_access_before_start_raises(testbed):
    env, registry = testbed
    tool = SagaHadoop(env, registry, "slurm://stampede", framework="yarn")
    with pytest.raises(RuntimeError, match="no YARN cluster"):
        tool.yarn
    with pytest.raises(RuntimeError, match="no Spark cluster"):
        tool.spark


def test_dedicated_hadoop_requires_flag(testbed):
    env, registry = testbed
    site = registry.lookup("stampede")

    def driver():
        with pytest.raises(SimulationError, match="dedicated"):
            yield env.process(provision_dedicated_hadoop(site))

    env.run(env.process(driver()))


def test_dedicated_hadoop_on_wrangler(testbed):
    env, registry = testbed
    site = registry.lookup("wrangler")

    def driver():
        yield env.process(provision_dedicated_hadoop(site))

    env.run(env.process(driver()))
    assert site.dedicated_yarn.running
    assert site.dedicated_hdfs.running
