"""Tests for hardware-aware Hadoop configuration templates (§V)."""

from repro.cluster import stampede, wrangler
from repro.cluster.machine import MachineSpec
from repro.cluster.storage import GB, MB, StorageSpec
from repro.hadoop_deploy import tune_for_machine


def test_wrangler_flash_shuffles_locally():
    template = tune_for_machine(wrangler(num_nodes=3))
    assert template.shuffle_transport == "local"


def test_large_memory_machine_gets_bigger_buffers():
    small = tune_for_machine(stampede(num_nodes=1))
    large = tune_for_machine(wrangler(num_nodes=1))
    assert large.io_sort_mb > small.io_sort_mb
    assert (large.yarn_config.nm_memory_fraction
            > small.yarn_config.nm_memory_fraction)


def test_slow_disks_fast_lustre_prefers_lustre_shuffle():
    spec = MachineSpec(
        name="spindle-machine", num_nodes=2, cores_per_node=16,
        memory_per_node=32 * GB, cpu_speed=1.0,
        local_disk=StorageSpec(name="slow-disk", aggregate_bw=40 * MB,
                               capacity=100 * GB),
        shared_fs=StorageSpec(name="fat-lustre", aggregate_bw=5000 * MB,
                              capacity=1000 * GB),
        backbone_bw=10 * GB, link_bw=1 * GB, net_latency=1e-5,
        download_bw=10 * MB)
    template = tune_for_machine(spec)
    assert template.shuffle_transport == "lustre"


def test_vcore_oversubscription_on_many_core_nodes():
    assert tune_for_machine(wrangler()).yarn_config.nm_vcore_ratio == 2.0
    assert tune_for_machine(stampede()).yarn_config.nm_vcore_ratio == 1.0


def test_rendered_snippets_present():
    template = tune_for_machine(stampede())
    assert "io.sort.mb" in template.rendered["mapred-site.xml.tuning"]
    assert "memory-mb" in template.rendered["yarn-site.xml.tuning"]
    assert template.machine == "stampede"
