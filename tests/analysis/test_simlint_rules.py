"""Per-rule fixture tests: each SIM code flags its hazard and stays
quiet on the idiomatic alternative."""

import pytest

from repro.analysis.simlint import lint_source


def codes(source, only=None):
    return [f.code for f in lint_source(source, rules=only)]


# ------------------------------------------------------------- SIM001
def test_sim001_flags_wall_clock_calls():
    src = (
        "import time\n"
        "def run(env):\n"
        "    t0 = time.perf_counter()\n"
        "    time.sleep(1)\n"
        "    return time.time() - t0\n"
    )
    assert codes(src, ["SIM001"]) == ["SIM001"] * 3


def test_sim001_flags_datetime_now_variants():
    src = (
        "import datetime\n"
        "a = datetime.datetime.now()\n"
        "b = datetime.date.today()\n"
    )
    assert codes(src, ["SIM001"]) == ["SIM001", "SIM001"]


def test_sim001_quiet_on_env_now():
    src = (
        "def run(env):\n"
        "    start = env.now\n"
        "    yield env.timeout(3.0)\n"
        "    return env.now - start\n"
    )
    assert codes(src, ["SIM001"]) == []


# ------------------------------------------------------------- SIM002
def test_sim002_flags_global_random_module():
    src = (
        "import random\n"
        "x = random.random()\n"
        "random.shuffle([1, 2])\n"
    )
    assert codes(src, ["SIM002"]) == ["SIM002", "SIM002"]


def test_sim002_flags_from_import_and_numpy_global():
    src = (
        "from random import shuffle\n"
        "import numpy as np\n"
        "shuffle([1, 2])\n"
        "y = np.random.uniform(size=3)\n"
    )
    assert codes(src, ["SIM002"]) == ["SIM002", "SIM002"]


def test_sim002_flags_unseeded_random_instance():
    assert codes("import random\nr = random.Random()\n",
                 ["SIM002"]) == ["SIM002"]


def test_sim002_quiet_on_seeded_streams():
    src = (
        "import random\n"
        "import numpy as np\n"
        "r = random.Random(42)\n"
        "g = np.random.default_rng(7)\n"
        "z = g.uniform(size=3)\n"
    )
    assert codes(src, ["SIM002"]) == []


# ------------------------------------------------------------- SIM003
def test_sim003_flags_builtin_hash():
    assert codes("part = hash(key) % n\n", ["SIM003"]) == ["SIM003"]


def test_sim003_quiet_on_stable_hash():
    src = (
        "from repro.hashing import stable_hash\n"
        "part = stable_hash(key) % n\n"
    )
    assert codes(src, ["SIM003"]) == []


# ------------------------------------------------------------- SIM004
def test_sim004_flags_module_and_class_counters():
    src = (
        "import itertools\n"
        "_ids = itertools.count(1)\n"
        "class Thing:\n"
        "    _seq = itertools.count(1)\n"
    )
    assert codes(src, ["SIM004"]) == ["SIM004", "SIM004"]


def test_sim004_flags_lowercase_mutable_and_global():
    src = (
        "cache = {}\n"
        "def bump():\n"
        "    global cache\n"
        "    cache = {}\n"
    )
    assert codes(src, ["SIM004"]) == ["SIM004", "SIM004"]


def test_sim004_quiet_on_constants_and_instance_state():
    src = (
        "import itertools\n"
        "POLICIES = {'HOT': 1}\n"
        "class Thing:\n"
        "    def __init__(self):\n"
        "        self._seq = itertools.count(1)\n"
        "        self.cache = {}\n"
    )
    assert codes(src, ["SIM004"]) == []


# ------------------------------------------------------------- SIM005
def test_sim005_flags_set_iteration():
    src = (
        "for name in {'b', 'a'}:\n"
        "    print(name)\n"
        "rows = [x for x in set(items)]\n"
        "for i, x in enumerate(set(items)):\n"
        "    print(i, x)\n"
    )
    assert codes(src, ["SIM005"]) == ["SIM005"] * 3


def test_sim005_quiet_on_sorted_sets_and_dicts():
    src = (
        "for name in sorted({'b', 'a'}):\n"
        "    print(name)\n"
        "for k in {'a': 1}:\n"
        "    print(k)\n"
    )
    assert codes(src, ["SIM005"]) == []


# ------------------------------------------------------------- SIM006
def test_sim006_flags_bare_and_broad_pass():
    src = (
        "try:\n"
        "    risky()\n"
        "except:\n"
        "    handle()\n"
        "try:\n"
        "    risky()\n"
        "except Exception:\n"
        "    pass\n"
    )
    assert codes(src, ["SIM006"]) == ["SIM006", "SIM006"]


def test_sim006_flags_broad_tuple_pass():
    src = (
        "try:\n"
        "    risky()\n"
        "except (ValueError, BaseException):\n"
        "    pass\n"
    )
    assert codes(src, ["SIM006"]) == ["SIM006"]


def test_sim006_quiet_on_narrow_or_recording_handlers():
    src = (
        "try:\n"
        "    risky()\n"
        "except ValueError:\n"
        "    pass\n"
        "try:\n"
        "    risky()\n"
        "except Exception as exc:\n"
        "    log(exc)\n"
    )
    assert codes(src, ["SIM006"]) == []


# ------------------------------------------------------- suppressions
def test_inline_suppression_silences_one_code():
    src = "import time\nt0 = time.time()  # simlint: disable=SIM001\n"
    assert codes(src) == []


def test_inline_suppression_is_code_specific():
    src = "import time\nt0 = time.time()  # simlint: disable=SIM002\n"
    assert codes(src) == ["SIM001"]


def test_bare_disable_silences_all_codes():
    src = "part = hash(key)  # simlint: disable\n"
    assert codes(src) == []


def test_findings_are_sorted_and_located():
    src = "import time\nx = hash(k)\nt = time.time()\n"
    findings = lint_source(src, path="mod.py")
    assert [(f.path, f.line, f.code) for f in findings] == [
        ("mod.py", 2, "SIM003"), ("mod.py", 3, "SIM001")]


def test_unknown_rule_selection_raises():
    with pytest.raises(KeyError):
        lint_source("x = 1\n", rules=["SIM999"])
