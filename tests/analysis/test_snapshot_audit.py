"""Per-rule fixtures for the SIM11x snapshot-safety audit, plus the
manifest contract: update/check round trips, drift detection, and the
committed ``state-manifest.json`` freshness gate."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis.project import Project
from repro.analysis.snapshot import (
    DEFAULT_ROOTS,
    SnapshotAuditor,
    audit_paths,
    manifest_payload,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def build(tmp_path, source, name="mod"):
    pkg = tmp_path / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    (pkg / f"{name}.py").write_text(source)
    return pkg


def audit(pkg, roots=("pkg.mod.Root",)):
    project = Project.load([pkg])
    return SnapshotAuditor(project, roots).run()


def hazard_codes(findings):
    return sorted(f.code for f in findings)


def test_sim111_open_file_handle(tmp_path):
    pkg = build(tmp_path, (
        "class Root:\n"
        "    def __init__(self, path):\n"
        "        self.log = open(path)\n"))
    entries, findings = audit(pkg)
    assert hazard_codes(findings) == ["SIM111"]
    (entry,) = [e for e in entries if e.attr == "log"]
    assert entry.classification == "hazard" and entry.rule == "SIM111"


def test_sim112_generator_state(tmp_path):
    pkg = build(tmp_path, (
        "def ticker():\n"
        "    yield 1\n"
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.gen = ticker()\n"
        "        self.exp = (x for x in range(3))\n"))
    _, findings = audit(pkg)
    assert hazard_codes(findings) == ["SIM112", "SIM112"]


def test_sim112_generator_annotation(tmp_path):
    pkg = build(tmp_path, (
        "from typing import Generator, Optional\n"
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.gen: Optional[Generator] = None\n"))
    _, findings = audit(pkg)
    assert hazard_codes(findings) == ["SIM112"]


def test_sim113_executor_state(tmp_path):
    pkg = build(tmp_path, (
        "from concurrent.futures import ThreadPoolExecutor\n"
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.pool = ThreadPoolExecutor(2)\n"))
    _, findings = audit(pkg)
    assert hazard_codes(findings) == ["SIM113"]


def test_sim114_lambda_and_bound_method(tmp_path):
    pkg = build(tmp_path, (
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.cb = lambda: 1\n"
        "        self.hook = self.tick\n"
        "    def tick(self):\n"
        "        return 0\n"))
    _, findings = audit(pkg)
    assert hazard_codes(findings) == ["SIM114", "SIM114"]


def test_sim115_module_global_backref(tmp_path):
    pkg = build(tmp_path, (
        "REGISTRY = {}\n"
        "LIMIT = 5\n"
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.registry = REGISTRY\n"
        "        self.limit = LIMIT\n"))
    entries, findings = audit(pkg)
    assert hazard_codes(findings) == ["SIM115"]
    # Immutable module constants are safe, not backrefs.
    (limit,) = [e for e in entries if e.attr == "limit"]
    assert limit.classification == "safe"


def test_audit_walks_composed_and_annotated_classes(tmp_path):
    """Reachability spans constructor calls, Optional[...] annotations
    and container element types."""
    pkg = build(tmp_path, (
        "from typing import Optional\n"
        "class Leaf:\n"
        "    def __init__(self):\n"
        "        self.cb = lambda: 1\n"
        "class Mid:\n"
        "    def __init__(self):\n"
        "        self.pending: list[tuple[int, Leaf]] = []\n"
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.mid: Optional[Mid] = None\n"))
    entries, findings = audit(pkg)
    assert {e.class_name for e in entries} == {
        "pkg.mod.Root", "pkg.mod.Mid", "pkg.mod.Leaf"}
    assert hazard_codes(findings) == ["SIM114"]


def test_inline_suppression_silences_audit_finding(tmp_path):
    pkg = build(tmp_path, (
        "class Root:\n"
        "    def __init__(self, path):\n"
        "        self.log = open(path)  # simlint: disable=SIM111\n"))
    entries, findings = audit(pkg)
    assert findings == []
    # The manifest still records the hazard: suppression excuses the
    # finding, it does not launder the contract.
    (entry,) = [e for e in entries if e.attr == "log"]
    assert entry.classification == "hazard"


def test_cli_check_fails_without_manifest_then_passes(tmp_path, capsys):
    pkg = build(tmp_path, (
        "class Root:\n"
        "    def __init__(self):\n"
        "        self.name = 'root'\n"))
    manifest = tmp_path / "m.json"
    baseline = tmp_path / "b.json"
    argv = [str(pkg), "--root", "pkg.mod.Root",
            "--manifest", str(manifest), "--baseline", str(baseline)]
    assert main(["audit-state", *argv, "--check"]) == 1
    assert "missing" in capsys.readouterr().out
    assert main(["audit-state", *argv, "--update-manifest"]) == 0
    capsys.readouterr()
    assert main(["audit-state", *argv, "--check"]) == 0


def test_cli_check_fails_on_manifest_drift(tmp_path, capsys):
    source = ("class Root:\n"
              "    def __init__(self):\n"
              "        self.name = 'root'\n")
    pkg = build(tmp_path, source)
    manifest = tmp_path / "m.json"
    argv = [str(pkg), "--root", "pkg.mod.Root",
            "--manifest", str(manifest),
            "--baseline", str(tmp_path / "b.json")]
    assert main(["audit-state", *argv, "--update-manifest"]) == 0
    (pkg / "mod.py").write_text(source +
                                "        self.extra = 1\n")
    capsys.readouterr()
    assert main(["audit-state", *argv, "--check"]) == 1
    assert "out of date" in capsys.readouterr().out


def test_cli_check_fails_on_unbaselined_hazard(tmp_path, capsys):
    pkg = build(tmp_path, (
        "class Root:\n"
        "    def __init__(self, path):\n"
        "        self.log = open(path)\n"))
    argv = [str(pkg), "--root", "pkg.mod.Root",
            "--manifest", str(tmp_path / "m.json"),
            "--baseline", str(tmp_path / "b.json")]
    assert main(["audit-state", *argv, "--update-manifest"]) == 0
    capsys.readouterr()
    assert main(["audit-state", *argv, "--check"]) == 1
    assert "SIM111" in capsys.readouterr().out


def test_cli_baselined_hazard_passes_check(tmp_path, capsys):
    pkg = build(tmp_path, (
        "class Root:\n"
        "    def __init__(self, path):\n"
        "        self.log = open(path)\n"))
    baseline = tmp_path / "b.json"
    baseline.write_text(json.dumps({"version": 1, "entries": [
        {"path": "pkg/mod.py", "code": "SIM111", "line": 3,
         "justification": "fixture"}]}))
    argv = [str(pkg), "--root", "pkg.mod.Root",
            "--manifest", str(tmp_path / "m.json"),
            "--baseline", str(baseline)]
    assert main(["audit-state", *argv, "--update-manifest"]) == 0
    capsys.readouterr()
    assert main(["audit-state", *argv, "--check"]) == 0


def test_committed_state_manifest_matches_fresh_audit():
    """The committed ``state-manifest.json`` is current and every
    hazard in the real tree is excused: the CI gate for audit-state."""
    entries, findings = audit_paths([REPO_ROOT / "src" / "repro"])
    derived = manifest_payload(DEFAULT_ROOTS, entries)
    committed = json.loads(
        (REPO_ROOT / "state-manifest.json").read_text())
    assert committed == derived, (
        "state-manifest.json is out of date; run "
        "`python -m repro audit-state --update-manifest`")
    assert findings == [], "\n".join(f.render() for f in findings)
