"""InvariantViolation must never be swallowed by broad handlers.

The sanitizer reports simulator bugs by raising
:class:`~repro.analysis.sanitizer.InvariantViolation`.  Three layers
run payload code under a broad ``except Exception`` that converts
payload bugs into recorded failures (FAILED unit, failed TaskResult,
FAILED job) — exactly the conversion that must *not* happen to a
sanitizer finding, or the violation is buried in a failure record
nobody reads.  One regression test per swallowing site.
"""

import pytest

from repro.analysis.sanitizer import InvariantViolation
from repro.api import ComputeUnitDescription, TaskDescription
from repro.cluster import Machine, stampede
from repro.rms import JobDescription, RmsConfig, SlurmScheduler
from repro.sim import Environment
from tests.core.test_units import active_pilot
from tests.raptor.test_overlay import overlay_on


def _violate():
    raise InvariantViolation("sanitizer: clock went backwards")


def test_agent_reraises_invariant_violation(stack):
    """agent._execute_unit: sanitizer findings crash, not FAILED units."""
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, function=_violate))
    with pytest.raises(InvariantViolation, match="clock went backwards"):
        env.run(umgr.wait_units(units))


def test_agent_still_records_payload_bugs(stack):
    """Ordinary payload exceptions keep the FAILED-unit contract."""
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)

    def boom():
        raise ValueError("payload bug")

    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, function=boom))
    env.run(umgr.wait_units(units))
    assert "payload bug" in units[0].stderr


def test_raptor_master_reraises_invariant_violation(stack):
    """master._dispatch: sanitizer findings crash, not failed results."""
    env, session, overlay = overlay_on(stack, workers=2)
    futures = overlay.submit_tasks([TaskDescription(function=_violate)])
    with pytest.raises(InvariantViolation, match="clock went backwards"):
        env.run(overlay.wait(futures))


def test_rms_reraises_invariant_violation():
    """rms._run_job: sanitizer findings crash, not FAILED jobs."""
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    rms = SlurmScheduler(env, machine, RmsConfig(
        submit_latency=0.2, schedule_interval=0.5,
        prolog_seconds=0.5, epilog_seconds=0.2))

    def payload(env_, job_):
        yield env_.timeout(1.0)
        raise InvariantViolation("sanitizer: negative queue depth")

    job = rms.submit(JobDescription(num_nodes=1, walltime=100,
                                    payload=payload))
    with pytest.raises(InvariantViolation, match="negative queue depth"):
        env.run(job.finished)
