"""Per-rule fixtures for the SIM10x cross-module taint pass.

Every flow rule gets a seeded violation that must be detected, plus
negative fixtures for the features that keep the pass quiet on healthy
code: order-laundering helpers, inline suppressions, and values that
never reach a sink.
"""

import json

from repro.__main__ import main
from repro.analysis.simflow import analyze_paths


def build(tmp_path, **modules):
    pkg = tmp_path / "pkg"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text("")
    for name, source in modules.items():
        (pkg / f"{name}.py").write_text(source)
    return pkg


def codes(findings):
    return sorted(f.code for f in findings)


def test_sim101_tainted_schedule_delay(tmp_path):
    pkg = build(tmp_path, mod=(
        "import time\n"
        "def kick(env):\n"
        "    delay = time.time()\n"
        "    env.timeout(delay)\n"))
    assert codes(analyze_paths([pkg])) == ["SIM101"]


def test_sim102_tainted_digest_input(tmp_path):
    pkg = build(tmp_path, mod=(
        "import os\n"
        "def fingerprint(stable_hash):\n"
        "    return stable_hash(os.getenv('HOME'))\n"))
    assert codes(analyze_paths([pkg])) == ["SIM102"]


def test_sim103_tainted_aggregate_row(tmp_path):
    pkg = build(tmp_path, mod=(
        "import json\n"
        "import random\n"
        "def row():\n"
        "    payload = {'jitter': random.random()}\n"
        "    return json.dumps(payload)\n"))
    assert codes(analyze_paths([pkg])) == ["SIM103"]


def test_sim104_tainted_metric_label_and_sample(tmp_path):
    pkg = build(tmp_path, mod=(
        "import socket\n"
        "import time\n"
        "def label(registry):\n"
        "    registry.counter('units', host=socket.gethostname())\n"
        "def sample(histogram):\n"
        "    histogram.observe(time.perf_counter())\n"))
    assert codes(analyze_paths([pkg])) == ["SIM104", "SIM104"]


def test_taint_crosses_module_boundaries(tmp_path):
    """The whole point of --flow: source and sink in different files."""
    pkg = build(
        tmp_path,
        clock=("import time\n"
               "def jitter():\n"
               "    return time.time() % 1.0\n"),
        sched=("from pkg.clock import jitter\n"
               "def kick(env):\n"
               "    delay = jitter()\n"
               "    env.timeout(delay)\n"))
    (finding,) = analyze_paths([pkg])
    assert finding.code == "SIM101"
    assert finding.path == "pkg/sched.py"
    assert "pkg/clock.py" in finding.message


def test_sorted_launders_unordered_taint(tmp_path):
    """``sorted()`` clears the unordered-iteration taint; an unsorted
    set materialization keeps it."""
    dirty = build(tmp_path / "dirty", mod=(
        "def rows(names, stable_hash):\n"
        "    order = list(set(names))\n"
        "    return stable_hash(order)\n"))
    clean = build(tmp_path / "clean", mod=(
        "def rows(names, stable_hash):\n"
        "    order = sorted(set(names))\n"
        "    return stable_hash(order)\n"))
    assert codes(analyze_paths([dirty])) == ["SIM102"]
    assert analyze_paths([clean]) == []


def test_untainted_values_stay_quiet(tmp_path):
    pkg = build(tmp_path, mod=(
        "def kick(env, delay):\n"
        "    env.timeout(delay)\n"
        "def fingerprint(stable_hash):\n"
        "    return stable_hash('constant')\n"))
    assert analyze_paths([pkg]) == []


def test_inline_suppression_silences_flow_finding(tmp_path):
    pkg = build(tmp_path, mod=(
        "import time\n"
        "def kick(env):\n"
        "    env.timeout(time.time())  # simlint: disable=SIM101\n"))
    assert analyze_paths([pkg]) == []


def test_cli_flow_check_fails_on_seeded_violation(tmp_path, capsys):
    pkg = build(tmp_path, mod=(
        "import time\n"
        "def kick(env):\n"
        "    env.timeout(time.time())\n"))
    assert main(["lint", str(pkg), "--flow", "--check",
                 "--baseline", str(tmp_path / "b.json")]) == 1
    out = capsys.readouterr().out
    assert "SIM101" in out


def test_cli_flow_check_passes_on_clean_tree(tmp_path, capsys):
    pkg = build(tmp_path, mod=(
        "def kick(env, delay):\n"
        "    env.timeout(delay)\n"))
    assert main(["lint", str(pkg), "--flow", "--check",
                 "--baseline", str(tmp_path / "b.json")]) == 0


def test_graph_cache_round_trips(tmp_path, capsys):
    """A second --flow run against an unchanged tree reuses the cached
    analysis and reports identical findings."""
    pkg = build(tmp_path, mod=(
        "import time\n"
        "def kick(env):\n"
        "    env.timeout(time.time())\n"))
    cache = tmp_path / "graph.json"
    first = analyze_paths([pkg], cache_path=cache)
    assert cache.exists()
    second = analyze_paths([pkg], cache_path=cache)
    assert first == second and codes(second) == ["SIM101"]


def test_flow_baseline_tolerated_and_not_stale_without_flow(tmp_path,
                                                           capsys):
    """A SIM10x entry in the shared ledger suppresses the finding under
    --flow and is *not* reported stale when --flow does not run."""
    pkg = build(tmp_path, mod=(
        "import time\n"
        "def kick(env):\n"
        "    env.timeout(time.time())  # simlint: disable=SIM001\n"))
    baseline = tmp_path / "b.json"
    baseline.write_text(json.dumps({"version": 1, "entries": [
        {"path": "pkg/mod.py", "code": "SIM101", "line": 3,
         "justification": "fixture"}]}))
    assert main(["lint", str(pkg), "--flow", "--check",
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    # Module-rule-only run: the SIM101 entry's family did not execute,
    # so it must not be flagged stale.
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(baseline)]) == 0


def test_committed_flow_baseline_is_empty_and_fresh():
    """The repo's own tree is flow-clean: the CI gate for --flow."""
    from pathlib import Path

    from repro.analysis.simlint import (
        Baseline,
        flow_rule_codes,
        lint_paths,
        module_rule_codes,
    )

    repo = Path(__file__).resolve().parents[2]
    findings = sorted(
        lint_paths([repo / "src" / "repro"], relative_to=repo)
        + analyze_paths([repo / "src" / "repro"]))
    baseline = Baseline.load(repo / "simlint-baseline.json")
    new, stale = baseline.split(
        findings, codes=module_rule_codes() + flow_rule_codes())
    assert new == [], "\n".join(f.render() for f in new)
    assert stale == [], [e.key for e in stale]
