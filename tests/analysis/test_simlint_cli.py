"""The ``python -m repro lint`` CLI: exit codes, JSON output, the
baseline ledger, and the committed-baseline-freshness contract."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis.simlint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "def run(env):\n    return env.now\n"
DIRTY = "import time\n\ndef run(env):\n    return time.time()\n"


def write_tree(tmp_path, source):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(source)
    return pkg


def test_report_mode_always_exits_zero(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    assert main(["lint", str(pkg),
                 "--baseline", str(tmp_path / "b.json")]) == 0
    out = capsys.readouterr().out
    assert "SIM001" in out and "1 finding(s)" in out


def test_check_mode_fails_on_new_finding(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(tmp_path / "b.json")]) == 1
    assert "SIM001" in capsys.readouterr().out


def test_check_mode_passes_on_clean_tree(tmp_path, capsys):
    pkg = write_tree(tmp_path, CLEAN)
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(tmp_path / "b.json")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_update_baseline_then_check_passes(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "b.json"
    assert main(["lint", str(pkg), "--update-baseline",
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(baseline)]) == 0


def test_check_mode_fails_on_stale_baseline_entry(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "b.json"
    assert main(["lint", str(pkg), "--update-baseline",
                 "--baseline", str(baseline)]) == 0
    (pkg / "mod.py").write_text(CLEAN)  # the finding no longer reproduces
    capsys.readouterr()
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_json_output_round_trips(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    assert main(["lint", str(pkg), "--format", "json",
                 "--baseline", str(tmp_path / "b.json")]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert set(payload["rules"]) >= {"SIM001", "SIM002", "SIM003",
                                     "SIM004", "SIM005", "SIM006"}
    (finding,) = payload["findings"]
    assert finding["code"] == "SIM001"
    assert finding["path"].endswith("pkg/mod.py")
    assert finding["line"] == 4


def test_list_rules_prints_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                 "SIM006"):
        assert code in out


def test_committed_baseline_matches_fresh_scan():
    """The repo's own sources lint clean against the committed baseline:
    no new findings, no stale entries.  This is exactly the CI gate."""
    findings = lint_paths([REPO_ROOT / "src" / "repro"],
                          relative_to=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / "simlint-baseline.json")
    new, stale = baseline.split(findings)
    assert new == [], "\n".join(f.render() for f in new)
    assert stale == [], [e.key for e in stale]
