"""The ``python -m repro lint`` CLI: exit codes, JSON output, the
baseline ledger, and the committed-baseline-freshness contract."""

import json
from pathlib import Path

from repro.__main__ import main
from repro.analysis.simlint import Baseline, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

CLEAN = "def run(env):\n    return env.now\n"
DIRTY = "import time\n\ndef run(env):\n    return time.time()\n"


def write_tree(tmp_path, source):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "mod.py").write_text(source)
    return pkg


def test_report_mode_always_exits_zero(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    assert main(["lint", str(pkg),
                 "--baseline", str(tmp_path / "b.json")]) == 0
    out = capsys.readouterr().out
    assert "SIM001" in out and "1 finding(s)" in out


def test_check_mode_fails_on_new_finding(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(tmp_path / "b.json")]) == 1
    assert "SIM001" in capsys.readouterr().out


def test_check_mode_passes_on_clean_tree(tmp_path, capsys):
    pkg = write_tree(tmp_path, CLEAN)
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(tmp_path / "b.json")]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_update_baseline_then_check_passes(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "b.json"
    assert main(["lint", str(pkg), "--update-baseline",
                 "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(baseline)]) == 0


def test_check_mode_fails_on_stale_baseline_entry(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    baseline = tmp_path / "b.json"
    assert main(["lint", str(pkg), "--update-baseline",
                 "--baseline", str(baseline)]) == 0
    (pkg / "mod.py").write_text(CLEAN)  # the finding no longer reproduces
    capsys.readouterr()
    assert main(["lint", str(pkg), "--check",
                 "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_json_output_round_trips(tmp_path, capsys):
    pkg = write_tree(tmp_path, DIRTY)
    assert main(["lint", str(pkg), "--format", "json",
                 "--baseline", str(tmp_path / "b.json")]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert set(payload["rules"]) >= {"SIM001", "SIM002", "SIM003",
                                     "SIM004", "SIM005", "SIM006"}
    (finding,) = payload["findings"]
    assert finding["code"] == "SIM001"
    assert finding["path"].endswith("pkg/mod.py")
    assert finding["line"] == 4


def test_list_rules_prints_catalogue(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("SIM001", "SIM002", "SIM003", "SIM004", "SIM005",
                 "SIM006"):
        assert code in out


def test_finding_paths_are_repo_root_relative(tmp_path, capsys,
                                              monkeypatch):
    """Paths key the committed baseline, so they must be the same no
    matter where the CLI runs from: repo-root-relative POSIX."""
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    pkg = write_tree(tmp_path, DIRTY)
    nested = tmp_path / "deep" / "inside"
    nested.mkdir(parents=True)
    monkeypatch.chdir(nested)
    assert main(["lint", str(pkg), "--format", "json",
                 "--baseline", str(tmp_path / "b.json")]) == 0
    (finding,) = json.loads(capsys.readouterr().out)["findings"]
    assert finding["path"] == "pkg/mod.py"


def test_check_is_cwd_independent(tmp_path, capsys, monkeypatch):
    """``lint --check`` from a subdirectory resolves relative scan and
    baseline paths against the repo root, not the cwd."""
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    pkg = write_tree(tmp_path, DIRTY)
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "pkg", "--update-baseline",
                 "--baseline", "b.json"]) == 0
    capsys.readouterr()
    nested = tmp_path / "deep" / "inside"
    nested.mkdir(parents=True)
    monkeypatch.chdir(nested)
    assert main(["lint", "pkg", "--check", "--baseline", "b.json"]) == 0
    monkeypatch.chdir(tmp_path)
    assert main(["lint", "pkg", "--check", "--baseline", "b.json"]) == 0


def test_committed_baseline_matches_fresh_scan():
    """The repo's own sources lint clean against the committed baseline:
    no new findings, no stale entries.  This is exactly the CI gate."""
    findings = lint_paths([REPO_ROOT / "src" / "repro"],
                          relative_to=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / "simlint-baseline.json")
    new, stale = baseline.split(findings)
    assert new == [], "\n".join(f.render() for f in new)
    assert stale == [], [e.key for e in stale]


def test_experiments_rule_table_matches_registry():
    """EXPERIMENTS.md's rule catalogue is the registry, verbatim —
    documented rules can neither drift from nor lag the code."""
    import re

    from repro.analysis.rules import RULES

    text = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    rows = dict(re.findall(r"^\| (SIM\d+) \| (.+?) \|$", text,
                           flags=re.MULTILINE))
    registry = {code: rule.summary for code, rule in RULES.items()}
    assert rows == registry, (
        "EXPERIMENTS.md rule table disagrees with "
        "repro.analysis.rules.RULES; regenerate it from "
        "`python -m repro lint --list-rules`")
