"""SimSanitizer: install/uninstall plumbing, every checker's violation
path, telemetry reporting, and the results-are-unchanged guarantee."""

import pytest

import repro.telemetry as telemetry_mod
from repro.analysis.sanitizer import (
    InvariantViolation,
    SimSanitizer,
    sanitize_enabled,
)
from repro.cluster import Machine, stampede
from repro.cluster.storage import SharedBandwidthPipe
from repro.core.agent.scheduler import ContinuousScheduler
from repro.core.session import Session
from repro.sim import Environment


# ------------------------------------------------------- installation
def test_install_is_idempotent_and_uninstall_detaches():
    env = Environment()
    first = SimSanitizer.install(env)
    assert SimSanitizer.install(env) is first
    assert env.sanitizer is first
    SimSanitizer.uninstall(env)
    assert env.sanitizer is None

    # Wrappers stay but pass through; scheduling still works.
    def worker():
        yield env.timeout(1.0)

    env.process(worker())
    env.run()
    assert env.now == 1.0


def test_sanitize_enabled_reads_environment():
    assert sanitize_enabled({"REPRO_SANITIZE": "1"})
    assert sanitize_enabled({"REPRO_SANITIZE": "true"})
    assert not sanitize_enabled({"REPRO_SANITIZE": "0"})
    assert not sanitize_enabled({})


def test_environment_auto_installs_from_env_var(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    env = Environment()
    assert env.sanitizer is not None


def test_session_sanitize_kwarg_tristate(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    env = Environment()
    session = Session(env, sanitize=True)
    assert session.sanitizer is env.sanitizer is not None
    env2 = Environment()
    assert Session(env2).sanitizer is None
    monkeypatch.setenv("REPRO_SANITIZE", "yes")
    env3 = Environment()
    assert Session(env3).sanitizer is not None
    env4 = Environment()
    SimSanitizer.install(env4)
    assert Session(env4, sanitize=False).sanitizer is None


# ------------------------------------------------------------ checkers
def test_clock_checker_rejects_nan_and_inf_delays():
    # (Negative delays are rejected by the Timeout constructor itself,
    # before the clock checker ever sees them.)
    env = Environment()
    sanitizer = SimSanitizer.install(env)
    for bad in (float("nan"), float("inf")):
        with pytest.raises(InvariantViolation, match="clock"):
            env.timeout(bad)
    env.timeout(0.0)
    env.timeout(2.5)
    assert sanitizer.violations == 2
    assert sanitizer.checks_run["clock"] >= 2


def test_scheduler_checker_catches_counter_drift():
    env = Environment()
    SimSanitizer.install(env)
    machine = Machine(env, stampede(num_nodes=1))
    sched = ContinuousScheduler(env, machine.nodes)
    sched._waiting += 1  # corrupt the queue-depth counter

    def consume():
        yield sched.allocate(1)

    with pytest.raises(InvariantViolation, match="queue-depth"):
        env.run(env.process(consume()))


def test_pipe_checker_catches_ledger_divergence():
    env = Environment()
    SimSanitizer.install(env)
    pipe = SharedBandwidthPipe(env, aggregate_bw=100.0)

    def workers():
        first = pipe.transfer(1000.0)
        pipe.transfer(4000.0)
        pipe._shadow[next(iter(pipe._shadow))] += 123.0  # corrupt
        yield first

    with pytest.raises(InvariantViolation, match="pipe"):
        env.run(env.process(workers()))


def test_yarn_rm_checker_catches_tally_drift():
    from repro.yarn import YarnCluster, YarnConfig

    env = Environment()
    sanitizer = SimSanitizer.install(env)
    machine = Machine(env, stampede(num_nodes=1))
    cluster = YarnCluster(env, machine, machine.nodes, config=YarnConfig())
    env.run(env.process(cluster.start()))
    rm = cluster.resource_manager
    sanitizer.check_resource_manager(rm)  # clean state passes
    rm._apps_pending += 1
    with pytest.raises(InvariantViolation, match="app-state tallies"):
        sanitizer.check_resource_manager(rm)


def test_namenode_checker_catches_phantom_replica():
    from repro.hdfs import HdfsCluster

    env = Environment()
    sanitizer = SimSanitizer.install(env)
    machine = Machine(env, stampede(num_nodes=2))
    hdfs = HdfsCluster(env, machine, machine.nodes)
    env.run(env.process(hdfs.start()))
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/data/a", 1024.0))

    env.run(env.process(driver()))
    nn = hdfs.namenode
    block_id = next(iter(nn.block_map))
    nn.block_map[block_id] = nn.block_map[block_id] + ["node-does-not-exist"]
    with pytest.raises(InvariantViolation, match="unregistered"):
        sanitizer.check_namenode(nn)


def test_drain_checker_flags_leaked_process():
    env = Environment()
    sanitizer = SimSanitizer.install(env)

    def leaker():
        from repro.sim.engine import Event
        yield Event(env)  # blocks forever: nobody fires this event

    env.process(leaker(), name="leaker")
    env.run()
    with pytest.raises(InvariantViolation, match="leaker"):
        sanitizer.assert_drained()


def test_drain_checker_passes_after_clean_run():
    env = Environment()
    sanitizer = SimSanitizer.install(env)

    def worker():
        yield env.timeout(1.0)

    env.process(worker())
    env.run()
    sanitizer.assert_drained()
    assert sanitizer.checks_run["drain"] == 1


# ----------------------------------------------------------- reporting
def test_violations_are_reported_through_telemetry():
    env = Environment()
    telemetry = telemetry_mod.install(env)
    sanitizer = SimSanitizer.install(env)
    events = []
    telemetry.bus.subscribe(events.append, categories=["sanitizer"])
    with pytest.raises(InvariantViolation):
        env.timeout(float("nan"))
    assert sanitizer.violations == 1
    assert len(events) == 1
    assert events[0].name == "violation"
    assert "delay" in events[0].payload["detail"]
    counter = telemetry.counter("sanitizer.violations", checker="clock")
    assert counter.total == 1


def test_report_summarises_checks_and_violations():
    env = Environment()
    sanitizer = SimSanitizer.install(env)
    env.timeout(1.0)
    report = sanitizer.report()
    assert report["checks_run"]["clock"] == 1
    assert report["violations"] == 0


# ------------------------------------------- results are not perturbed
def test_sanitizer_does_not_change_yarn_results():
    """The same workload, sanitized and not, finishes at the same
    simulated times — installing the sanitizer never changes results."""
    from tests.yarn.test_yarn import make_yarn, simple_am, submit_and_wait
    from repro.yarn import AppSpec, YarnResource

    def run(sanitize):
        env, machine, cluster = make_yarn(num_nodes=2)
        if sanitize:
            SimSanitizer.install(env)
        spec = AppSpec(name="probe", am_resource=YarnResource(512, 1),
                       am_program=simple_am(task_count=4))
        submit_and_wait(env, cluster, spec)
        return env.now

    assert run(True) == run(False)


def test_sanitizer_does_not_change_sweep_digest(monkeypatch):
    """A whole experiment grid hashes to the same digest with the
    sanitizer armed via REPRO_SANITIZE — the read-only contract, end
    to end."""
    from repro.experiments.sweeps import run_sweep

    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    plain = run_sweep("figure5", jobs=1).digest()
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_sweep("figure5", jobs=1).digest()
    assert plain == sanitized
