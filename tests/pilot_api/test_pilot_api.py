"""Tests for the BigJob-flavoured Pilot-API facade."""

import pytest

from repro.core.description import DescriptionError
from repro.pilot_api import (
    ComputeDataService,
    PilotComputeService,
    ServiceState,
)
from repro.pilot_api.service import (
    _pilot_description_from_dict,
    _unit_description_from_dict,
)


def make_services(stack):
    env, registry, session, _, _ = stack
    pcs = PilotComputeService(session)
    cds = ComputeDataService(session)
    return env, pcs, cds


PILOT_DICT = {
    "service_url": "slurm://stampede",
    "number_of_nodes": 2,
    "walltime": 60,
}


def test_pilot_lifecycle_via_dicts(stack):
    env, pcs, cds = make_services(stack)
    pilot = pcs.create_pilot(dict(PILOT_DICT))
    assert pilot.get_state() == ServiceState.NEW
    env.run(pilot.wait_active())
    assert pilot.get_state() == ServiceState.RUNNING
    details = pilot.get_details()
    assert details["agent"]["cores"] == 32
    pilot.cancel()
    env.run(pilot.native.wait())
    assert pilot.get_state() == ServiceState.CANCELED


def test_compute_units_via_dicts(stack):
    env, pcs, cds = make_services(stack)
    pilot = pcs.create_pilot(dict(PILOT_DICT))
    cds.add_pilot_compute_service(pcs)
    env.run(pilot.wait_active())
    cu = cds.submit_compute_unit({
        "executable": "/bin/date",
        "number_of_processes": 1,
        "cpu_seconds": 5.0,
        "function": lambda: 2026,
    })
    env.run(cds.wait())
    assert cu.get_state() == ServiceState.DONE
    assert cu.get_result() == 2026


def test_mpi_spmd_variation_maps_to_mpiexec():
    desc = _unit_description_from_dict({
        "executable": "simulate", "number_of_processes": 8,
        "spmd_variation": "mpi"})
    assert desc.launch_method == "mpiexec"
    assert desc.cores == 8


def test_processes_to_nodes_mapping():
    desc = _pilot_description_from_dict({
        "service_url": "slurm://stampede", "number_of_processes": 40})
    assert desc.nodes == 3  # ceil(40 / 16)


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown pilot"):
        _pilot_description_from_dict({
            "service_url": "slurm://x", "walltimes": 1})
    with pytest.raises(ValueError, match="unknown unit"):
        _unit_description_from_dict({"executables": "/bin/date"})


def test_service_url_required():
    with pytest.raises(ValueError, match="service_url"):
        _pilot_description_from_dict({"number_of_nodes": 1})


def test_failed_unit_state_mapping(stack):
    env, pcs, cds = make_services(stack)
    pilot = pcs.create_pilot(dict(PILOT_DICT))
    cds.add_pilot_compute_service(pcs)
    env.run(pilot.wait_active())

    def boom():
        raise RuntimeError("x")

    cu = cds.submit_compute_unit({"executable": "bad", "function": boom})
    env.run(cds.wait())
    assert cu.get_state() == ServiceState.FAILED


def test_bad_typed_values_raise_description_error():
    with pytest.raises(DescriptionError, match="walltime"):
        _pilot_description_from_dict({
            "service_url": "slurm://x", "walltime": "soon"})
    with pytest.raises(DescriptionError, match="number_of_nodes"):
        _pilot_description_from_dict({
            "service_url": "slurm://x", "number_of_nodes": "two"})
    with pytest.raises(DescriptionError, match="service_url"):
        _pilot_description_from_dict({"service_url": 17})
    with pytest.raises(DescriptionError, match="number_of_processes"):
        _unit_description_from_dict({
            "executable": "/bin/date", "number_of_processes": "many"})
    with pytest.raises(DescriptionError, match="memory_mb"):
        _unit_description_from_dict({
            "executable": "/bin/date", "memory_mb": "big"})


def test_description_error_is_a_value_error():
    # callers catching the old ValueError contract keep working
    with pytest.raises(ValueError, match="unknown unit"):
        _unit_description_from_dict({"executables": "/bin/date"})


def test_state_alias_is_deprecated_but_canonical():
    from repro.core.states import ServiceState as Canonical
    from repro.pilot_api import State

    with pytest.warns(DeprecationWarning, match="ServiceState"):
        value = State.Running
    assert value == Canonical.RUNNING
    with pytest.warns(DeprecationWarning):
        assert State.Done == Canonical.DONE
    with pytest.raises(AttributeError):
        State.Bogus


def test_pcs_cancel_all(stack):
    env, pcs, cds = make_services(stack)
    a = pcs.create_pilot(dict(PILOT_DICT))
    b = pcs.create_pilot(dict(PILOT_DICT, service_url="slurm://wrangler"))
    env.run(env.all_of([a.wait_active(), b.wait_active()]))
    pcs.cancel()
    env.run(env.all_of([a.native.wait(), b.native.wait()]))
    assert a.get_state() == ServiceState.CANCELED
    assert b.get_state() == ServiceState.CANCELED
