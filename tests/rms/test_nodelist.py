"""Tests for SLURM hostlist compression, incl. a round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rms.slurm import compress_nodelist, expand_nodelist


def test_empty():
    assert compress_nodelist([]) == ""
    assert expand_nodelist("") == []


def test_single_node():
    assert compress_nodelist(["c0001"]) == "c[0001]"
    assert expand_nodelist("c[0001]") == ["c0001"]


def test_contiguous_range():
    names = [f"c{i:04d}" for i in range(1, 5)]
    assert compress_nodelist(names) == "c[0001-0004]"
    assert expand_nodelist("c[0001-0004]") == names


def test_disjoint_ranges():
    names = ["c0001", "c0002", "c0005"]
    assert compress_nodelist(names) == "c[0001-0002,0005]"
    assert expand_nodelist("c[0001-0002,0005]") == names


def test_heterogeneous_names_fall_back_to_csv():
    assert compress_nodelist(["alpha", "beta2"]) == "alpha,beta2"
    assert expand_nodelist("alpha,beta2") == ["alpha", "beta2"]


@given(numbers=st.sets(st.integers(min_value=0, max_value=9999),
                       min_size=1, max_size=40))
@settings(max_examples=100)
def test_roundtrip_property(numbers):
    names = sorted(f"node{n:04d}" for n in numbers)
    assert expand_nodelist(compress_nodelist(names)) == names
