"""Tests for the batch-scheduler engine and its dialects."""

import pytest

from repro.cluster import Machine, stampede
from repro.rms import (
    JobDescription,
    JobState,
    RmsConfig,
    SgeScheduler,
    SlurmScheduler,
    TorqueScheduler,
    make_scheduler,
)
from repro.sim import Environment, Interrupt

FAST = RmsConfig(submit_latency=0.5, schedule_interval=1.0,
                 prolog_seconds=2.0, epilog_seconds=0.5)


def make_env(num_nodes=4, config=FAST, cls=SlurmScheduler):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    rms = cls(env, machine, config)
    return env, machine, rms


def sleep_payload(duration):
    def payload(env, job):
        yield env.timeout(duration)
    return payload


def test_job_runs_and_completes():
    env, machine, rms = make_env()
    job = rms.submit(JobDescription(num_nodes=2, walltime=100,
                                    payload=sleep_payload(10)))
    env.run(job.finished)
    assert job.state is JobState.DONE
    assert job.exit_code == 0
    assert job.start_time is not None
    assert job.end_time - job.start_time == pytest.approx(10.0 + FAST.epilog_seconds)


def test_allocation_size_and_exclusivity():
    env, machine, rms = make_env(num_nodes=4)
    seen = {}

    def payload(env_, job_):
        seen["nodes"] = list(job_.allocation.node_names)
        yield env_.timeout(1)

    job = rms.submit(JobDescription(num_nodes=3, payload=payload))
    env.run(job.finished)
    assert len(seen["nodes"]) == 3
    assert len(set(seen["nodes"])) == 3


def test_jobs_queue_when_machine_full():
    env, machine, rms = make_env(num_nodes=2)
    j1 = rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(50)))
    j2 = rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(10)))
    env.run(j2.finished)
    assert j2.start_time >= j1.end_time  # j2 had to wait for j1's nodes


def test_backfill_lets_small_job_jump():
    env, machine, rms = make_env(num_nodes=3)
    big_hold = rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(60)))
    blocked = rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(5)))
    small = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(5)))
    env.run(small.finished)
    # small fits in the 1 free node and must not wait for `blocked`:
    # it finishes while the 60s holder is still running and before
    # `blocked` has even started.
    assert small.state is JobState.DONE
    assert big_hold.state is JobState.RUNNING
    assert blocked.state is JobState.PENDING


def test_no_backfill_strict_fifo():
    config = RmsConfig(submit_latency=0.5, schedule_interval=1.0,
                       prolog_seconds=2.0, epilog_seconds=0.5, backfill=False)
    env, machine, rms = make_env(num_nodes=3, config=config)
    rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(60)))
    blocked = rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(5)))
    small = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(5)))
    env.run(until=30.0)
    assert small.state is JobState.PENDING  # must wait behind blocked head


def test_walltime_timeout():
    env, machine, rms = make_env()
    job = rms.submit(JobDescription(num_nodes=1, walltime=5.0,
                                    payload=sleep_payload(1000)))
    env.run(job.finished)
    assert job.state is JobState.TIMEOUT
    assert "walltime" in job.fail_reason


def test_payload_exception_fails_job():
    env, machine, rms = make_env()

    def bad_payload(env_, job_):
        yield env_.timeout(1)
        raise RuntimeError("bootstrap exploded")

    job = rms.submit(JobDescription(num_nodes=1, payload=bad_payload))
    env.run(job.finished)
    assert job.state is JobState.FAILED
    assert "bootstrap exploded" in job.fail_reason


def test_cancel_pending_job():
    env, machine, rms = make_env(num_nodes=1)
    holder = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(100)))
    victim = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(1)))

    def canceler():
        yield env.timeout(10)
        rms.cancel(victim.job_id)

    env.process(canceler())
    env.run(victim.finished)
    assert victim.state is JobState.CANCELED
    assert victim.start_time is None


def test_cancel_running_job_releases_nodes():
    env, machine, rms = make_env(num_nodes=1)
    victim = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(1000)))
    follower = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(1)))

    def canceler():
        yield victim.started
        yield env.timeout(5)
        rms.cancel(victim.job_id)

    env.process(canceler())
    env.run(follower.finished)
    assert victim.state is JobState.CANCELED
    assert follower.state is JobState.DONE


def test_payload_may_catch_cancel_interrupt():
    env, machine, rms = make_env()
    cleaned = []

    def graceful(env_, job_):
        try:
            yield env_.timeout(1000)
        except Interrupt:
            cleaned.append(True)

    job = rms.submit(JobDescription(num_nodes=1, payload=graceful))

    def canceler():
        yield job.started
        rms.cancel(job.job_id)

    env.process(canceler())
    env.run(job.finished)
    assert cleaned == [True]
    assert job.state is JobState.DONE  # payload exited normally


def test_nodes_released_after_completion():
    env, machine, rms = make_env(num_nodes=2)
    job = rms.submit(JobDescription(num_nodes=2, payload=sleep_payload(5)))
    env.run(job.finished)
    assert rms.free_node_count == 2


def test_oversized_job_rejected():
    env, machine, rms = make_env(num_nodes=2)
    with pytest.raises(ValueError, match="nodes"):
        rms.submit(JobDescription(num_nodes=5))


def test_invalid_description_rejected():
    env, machine, rms = make_env()
    with pytest.raises(ValueError):
        rms.submit(JobDescription(num_nodes=0))
    with pytest.raises(ValueError):
        rms.submit(JobDescription(walltime=-1))


def test_queue_wait_measured():
    env, machine, rms = make_env(num_nodes=1)
    j1 = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(20)))
    j2 = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(1)))
    env.run(j2.finished)
    assert j2.queue_wait > 15


def test_job_history_records_transitions():
    env, machine, rms = make_env()
    job = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(1)))
    env.run(job.finished)
    states = [s for _, s in job.history]
    assert states == [JobState.NEW, JobState.PENDING,
                      JobState.RUNNING, JobState.DONE]


def test_illegal_transition_rejected():
    env, machine, rms = make_env()
    job = rms.submit(JobDescription(num_nodes=1, payload=sleep_payload(1)))
    env.run(job.finished)
    with pytest.raises(ValueError, match="illegal"):
        job.advance(JobState.RUNNING)


# ----------------------------------------------------------- RMS dialects
def test_slurm_environment_export():
    env, machine, rms = make_env(cls=SlurmScheduler)
    captured = {}

    def payload(env_, job_):
        captured.update(job_.env_vars)
        yield env_.timeout(1)

    job = rms.submit(JobDescription(num_nodes=2, payload=payload))
    env.run(job.finished)
    assert captured["SLURM_NNODES"] == "2"
    assert captured["SLURM_CPUS_ON_NODE"] == "16"
    assert "stampede-n" in captured["SLURM_NODELIST"]


def test_torque_nodefile_one_line_per_core():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    rms = TorqueScheduler(env, machine, FAST)
    captured = {}

    def payload(env_, job_):
        captured.update(job_.env_vars)
        yield env_.timeout(1)

    job = rms.submit(JobDescription(num_nodes=2, payload=payload))
    env.run(job.finished)
    lines = captured["PBS_NODEFILE"].split("\n")
    assert len(lines) == 2 * 16
    assert captured["PBS_NUM_PPN"] == "16"


def test_sge_hostfile_format():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=2))
    rms = SgeScheduler(env, machine, FAST)
    captured = {}

    def payload(env_, job_):
        captured.update(job_.env_vars)
        yield env_.timeout(1)

    job = rms.submit(JobDescription(num_nodes=2, queue="fast", payload=payload))
    env.run(job.finished)
    lines = captured["PE_HOSTFILE"].split("\n")
    assert len(lines) == 2
    assert lines[0].split()[1] == "16"
    assert captured["NSLOTS"] == "32"


def test_make_scheduler_factory():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=1))
    assert isinstance(make_scheduler("slurm", env, machine), SlurmScheduler)
    assert isinstance(make_scheduler("pbs", env, machine), TorqueScheduler)
    assert isinstance(make_scheduler("SGE", env, machine), SgeScheduler)
    with pytest.raises(ValueError):
        make_scheduler("lsf", env, machine)


def test_custom_environment_passthrough():
    env, machine, rms = make_env()
    captured = {}

    def payload(env_, job_):
        captured.update(job_.env_vars)
        yield env_.timeout(1)

    job = rms.submit(JobDescription(
        num_nodes=1, payload=payload,
        environment={"RADICAL_PILOT_DBURL": "mongodb://x"}))
    env.run(job.finished)
    assert captured["RADICAL_PILOT_DBURL"] == "mongodb://x"
