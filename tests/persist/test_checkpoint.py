"""Replay-based checkpoint/restore: determinism proofs and guard rails."""

import pytest

from repro.persist import (
    PersistError,
    RestoreMismatch,
    SchemaDrift,
    SnapshotStore,
    launch,
    restore,
    scenario,
    scenario_names,
    state_digest,
    state_fingerprint,
)
from repro.persist.checkpoint import fingerprint_diff
from repro.sim.engine import Environment, SimulationError

#: Small bag so each checkpoint test stays sub-second.
BAG = {"ntasks": 4, "nodes": 2, "fault_rate": 0.5}


def test_builtin_scenarios_registered():
    names = scenario_names()
    assert "bag" in names and "raptor-stream" in names


def test_launch_unknown_scenario_rejected():
    with pytest.raises(PersistError, match="unknown scenario"):
        launch("no-such-scenario")


def test_duplicate_scenario_name_rejected():
    with pytest.raises(PersistError, match="already registered"):
        scenario("bag")(lambda seed: None)


def test_launch_binds_provenance():
    session = launch("bag", seed=7, **BAG)
    prov = session.provenance
    assert prov.name == "bag"
    assert prov.seed == 7
    assert prov.params == BAG
    assert prov.module == "repro.persist.scenarios"


def test_unprovenanced_session_cannot_checkpoint(tmp_path):
    from repro.api import Environment, Session
    session = Session(Environment())
    with pytest.raises(PersistError, match="no provenance"):
        session.checkpoint(tmp_path / "s")


def test_same_recipe_same_fingerprint():
    a = launch("bag", seed=5, **BAG)
    b = launch("bag", seed=5, **BAG)
    a.env.run(until=60.0)
    b.env.run(until=60.0)
    assert fingerprint_diff(state_fingerprint(a),
                            state_fingerprint(b)) == []
    assert state_digest(a) == state_digest(b)


def test_different_seed_different_fingerprint():
    a = launch("bag", seed=5, **BAG)
    b = launch("bag", seed=6, **BAG)
    a.env.run(until=60.0)
    b.env.run(until=60.0)
    assert state_digest(a) != state_digest(b)


def test_checkpoint_restore_round_trip(tmp_path):
    session = launch("bag", seed=9, **BAG)
    session.env.run(until=80.0)
    info = session.checkpoint(tmp_path / "s")
    assert info.scenario == "bag"
    assert info.now == session.env.now
    assert info.steps == session.env.steps

    restored = restore(tmp_path / "s")
    assert restored is not session
    assert restored.env.now == session.env.now
    assert restored.env.steps == session.env.steps
    assert state_digest(restored) == info.state_digest


def test_restored_session_continues_byte_identically(tmp_path):
    """The headline guarantee: drive the original and the restored
    session through the same remaining workload — every aggregate
    digest along the way is byte-identical."""
    session = launch("bag", seed=9, **BAG)
    session.env.run(until=80.0)
    session.checkpoint(tmp_path / "s")
    restored = restore(tmp_path / "s")
    for horizon in (120.0, 200.0):
        session.env.run(until=horizon)
        restored.env.run(until=horizon)
        assert state_digest(session) == state_digest(restored)
    # ...and through workload completion, faults and restarts included
    session.env.run(session.handles["umgr"].wait_units(
        session.handles["units"]))
    restored.env.run(restored.handles["umgr"].wait_units(
        restored.handles["units"]))
    assert state_digest(session) == state_digest(restored)


def test_mutation_outside_the_recipe_is_caught(tmp_path):
    """Only time may advance between launch and checkpoint; any other
    mutation makes the snapshot unreplayable — and the restore says so
    instead of continuing from divergent state."""
    session = launch("bag", seed=9, **BAG)
    session.env.run(until=80.0)
    session.next_uid("rogue")       # out-of-recipe state mutation
    session.checkpoint(tmp_path / "s")
    with pytest.raises(RestoreMismatch, match="state digest"):
        restore(tmp_path / "s")


def test_checkpoint_refuses_mid_process(tmp_path):
    session = launch("bag", seed=9, **BAG)

    def inside():
        session.checkpoint(tmp_path / "s")
        yield 1.0

    session.env.process(inside())
    with pytest.raises(PersistError, match="quiescent"):
        session.env.run(until=session.env.now + 1.0)


def test_schema_drift_detected(tmp_path):
    session = launch("bag", seed=9, **BAG)
    session.env.run(until=60.0)
    session.checkpoint(tmp_path / "s")
    store = SnapshotStore(tmp_path / "s")
    record = store.resolve("latest")
    record["manifest_digest"] = "f" * 64   # snapshot from another tree
    store.set_ref("latest", store.put(record))
    with pytest.raises(SchemaDrift, match="state-manifest"):
        restore(tmp_path / "s")


def test_named_refs_select_barriers(tmp_path):
    session = launch("bag", seed=9, **BAG)
    session.env.run(until=60.0)
    early = session.checkpoint(tmp_path / "s", ref="early")
    session.env.run(until=100.0)
    late = session.checkpoint(tmp_path / "s", ref="late")
    assert early.digest != late.digest
    assert restore(tmp_path / "s", ref="early").env.now == 60.0
    assert restore(tmp_path / "s", ref="late").env.now == 100.0


def test_raptor_stream_round_trip(tmp_path):
    session = launch("raptor-stream", seed=11, workers=2, ntasks=6)
    session.env.run(until=session.env.now + 5.0)
    info = session.checkpoint(tmp_path / "s")
    restored = restore(tmp_path / "s")
    assert state_digest(restored) == info.state_digest
    session.env.run(session.handles["overlay"].wait())
    restored.env.run(restored.handles["overlay"].wait())
    assert session.handles["overlay"].stats() == \
        restored.handles["overlay"].stats()
    assert state_digest(session) == state_digest(restored)


def test_replay_guard_rails():
    env = Environment()
    with pytest.raises(SimulationError, match="exhausted"):
        env.replay_to(5)
    env2 = Environment()

    def ticks():
        for _ in range(3):
            yield 1.0

    env2.process(ticks())
    env2.run()
    with pytest.raises(SimulationError, match="backwards"):
        env2.replay_to(0)


def test_replay_restores_parked_clock():
    """run(until=T) parks the clock past the last event; replay_to
    re-applies that position (and rejects unreachable ones)."""
    def ticks():
        yield 1.0
        yield 1.0

    a = Environment()
    a.process(ticks())
    a.run(until=5.0)
    b = Environment()
    b.process(ticks())
    b.replay_to(a.steps, now=5.0)
    assert b.now == a.now == 5.0
    c = Environment()
    c.process(ticks())
    with pytest.raises(SimulationError, match="unreachable"):
        c.replay_to(1, now=100.0)   # next event lies before that clock
