"""The content-addressed snapshot store: atomicity, integrity, refs."""

import json
import os

import pytest

from repro.persist import (
    STORE_FORMAT,
    SnapshotStore,
    StoreError,
    payload_digest,
)


def test_put_get_round_trip(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    payload = {"kind": "demo", "values": [1, 2, 3], "nested": {"a": 1}}
    digest = store.put(payload)
    assert digest == payload_digest(payload)
    assert store.get(digest) == payload
    assert digest in store


def test_put_is_idempotent_and_content_addressed(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    a = store.put({"x": 1})
    b = store.put({"x": 1})
    c = store.put({"x": 2})
    assert a == b != c
    assert store.digests() == sorted([a, c])


def test_key_order_never_changes_the_digest(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    assert store.put({"a": 1, "b": 2}) == store.put({"b": 2, "a": 1})


def test_refs_move_atomically_and_resolve(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    first = store.put({"rev": 1})
    second = store.put({"rev": 2})
    store.set_ref("latest", first)
    assert store.ref("latest") == first
    store.set_ref("latest", second)
    assert store.ref("latest") == second
    assert store.refs() == {"latest": second}
    assert store.resolve("latest") == {"rev": 2}
    assert store.resolve(first) == {"rev": 1}


def test_set_ref_blocks_behind_the_refs_lock(tmp_path):
    """Concurrent checkpoints into one store must not drop each
    other's ref updates: set_ref waits for the advisory lock."""
    fcntl = pytest.importorskip("fcntl")
    import threading

    store = SnapshotStore(tmp_path / "s")
    digest = store.put({"rev": 1})
    fd = os.open(store.root / "refs.lock", os.O_CREAT | os.O_RDWR)
    fcntl.flock(fd, fcntl.LOCK_EX)
    done = threading.Event()

    def contender():
        store.set_ref("latest", digest)
        done.set()

    thread = threading.Thread(target=contender)
    thread.start()
    try:
        assert not done.wait(0.2)       # blocked while we hold the lock
    finally:
        fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)
    thread.join(timeout=10)
    assert done.is_set()
    assert store.ref("latest") == digest


def test_ref_to_unknown_object_rejected(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    with pytest.raises(StoreError, match="unknown object"):
        store.set_ref("latest", "0" * 64)


def test_corrupt_object_detected_on_read(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    digest = store.put({"x": 1})
    path = store.objects / f"{digest}.json"
    path.write_text(json.dumps({"x": 2}))
    with pytest.raises(StoreError, match="corrupt"):
        store.get(digest)
    with pytest.raises(StoreError, match="corrupt"):
        store.verify()


def test_verify_counts_clean_objects(tmp_path):
    store = SnapshotStore(tmp_path / "s")
    for i in range(3):
        store.put({"i": i})
    assert store.verify() == 3


def test_missing_store_rejected_without_create(tmp_path):
    with pytest.raises(StoreError, match="no snapshot store"):
        SnapshotStore(tmp_path / "nope", create=False)


def test_format_mismatch_rejected(tmp_path):
    root = tmp_path / "s"
    SnapshotStore(root)
    (root / "store.json").write_text(
        json.dumps({"format": STORE_FORMAT + 1}))
    with pytest.raises(StoreError, match="format"):
        SnapshotStore(root)


def test_no_temp_files_left_behind(tmp_path):
    """Every write goes through tmp+rename; nothing stays half-written."""
    store = SnapshotStore(tmp_path / "s")
    digest = store.put({"x": 1})
    store.set_ref("latest", digest)
    leftovers = [p for p in (tmp_path / "s").rglob("*")
                 if f".tmp.{os.getpid()}" in p.name]
    assert leftovers == []
