"""The crash-safe sweep journal: durability, torn tails, spec identity."""

import json

import pytest

from repro.persist import JournalError, SweepJournal


SPEC = {"grid": "demo", "root_seed": 42, "quick": False,
        "cells": [{"key": "a", "seed": 1}, {"key": "b", "seed": 2}]}


def test_spec_round_trip_and_identity_lock(tmp_path):
    journal = SweepJournal(tmp_path / "run")
    journal.write_spec(dict(SPEC))
    spec = journal.read_spec()
    assert spec["grid"] == "demo"
    # identical re-write is a no-op...
    journal.write_spec(dict(SPEC))
    # ...but a different sweep is rejected
    with pytest.raises(JournalError, match="different sweep"):
        journal.write_spec({**SPEC, "root_seed": 7})


def test_record_and_recover(tmp_path):
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("b", {"rows": [2]})
    recovered = SweepJournal(tmp_path / "run").completed()
    assert recovered == {"a": {"rows": [1]}, "b": {"rows": [2]}}


def test_pending_preserves_declaration_order(tmp_path):
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("b", {"rows": [2]})
    assert SweepJournal(tmp_path / "run").pending(
        ["a", "b", "c"]) == ["a", "c"]


def test_torn_tail_is_dropped(tmp_path):
    """The one corruption a SIGKILL can cause — a half-appended final
    line — recovers to the last durable record."""
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("b", {"rows": [2]})
    cells = tmp_path / "run" / "cells.jsonl"
    text = cells.read_text()
    cells.write_text(text + text.splitlines()[0][: len(text) // 4])
    recovered = SweepJournal(tmp_path / "run").completed()
    assert set(recovered) == {"a", "b"}


def test_append_after_torn_tail_repairs_file(tmp_path):
    """Appending after a crash must truncate the torn fragment on disk
    first — otherwise the new record merges onto it, becoming mid-file
    corruption that makes every later recovery raise."""
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("b", {"rows": [2]})
    cells = tmp_path / "run" / "cells.jsonl"
    text = cells.read_text()
    cells.write_text(text + text.splitlines()[0][: len(text) // 4])
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("c", {"rows": [3]})
        journal.record("d", {"rows": [4]})
    assert SweepJournal(tmp_path / "run").completed() == {
        "a": {"rows": [1]}, "b": {"rows": [2]},
        "c": {"rows": [3]}, "d": {"rows": [4]}}


def test_append_after_unterminated_valid_tail(tmp_path):
    """A crash can flush a full final line but not its newline; the
    next append must neither merge onto that line nor drop it."""
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
    cells = tmp_path / "run" / "cells.jsonl"
    cells.write_bytes(cells.read_bytes().rstrip(b"\n"))
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("b", {"rows": [2]})
    assert SweepJournal(tmp_path / "run").completed() == {
        "a": {"rows": [1]}, "b": {"rows": [2]}}


def test_append_rejects_mid_file_corruption(tmp_path):
    """Repair only ever trims the tail; corruption anywhere else stops
    the append instead of being buried under new records."""
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("b", {"rows": [2]})
    cells = tmp_path / "run" / "cells.jsonl"
    lines = cells.read_text().splitlines()
    lines[0] = lines[0][:-5] + 'oops"'
    cells.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="not a crash artifact"):
        SweepJournal(tmp_path / "run").record("c", {"rows": [3]})


def test_mid_file_corruption_rejected(tmp_path):
    """A mangled line *before* the tail means the file was edited, not
    crashed on — that is an error, never silently skipped."""
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("b", {"rows": [2]})
    cells = tmp_path / "run" / "cells.jsonl"
    lines = cells.read_text().splitlines()
    lines[0] = lines[0][:-5] + 'oops"'
    cells.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt journal line 1"):
        SweepJournal(tmp_path / "run").completed()


def test_tampered_digest_rejected(tmp_path):
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("b", {"rows": [2]})
    cells = tmp_path / "run" / "cells.jsonl"
    lines = cells.read_text().splitlines()
    entry = json.loads(lines[0])
    entry["result"] = {"rows": [999]}   # edit without fixing "check"
    lines[0] = json.dumps(entry)
    cells.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt"):
        SweepJournal(tmp_path / "run").completed()


def test_duplicate_keys_last_write_wins(tmp_path):
    """Re-running a cell (e.g. resumed twice concurrently) journals two
    records; recovery keeps the newest."""
    with SweepJournal(tmp_path / "run") as journal:
        journal.record("a", {"rows": [1]})
        journal.record("a", {"rows": [2]})
    assert SweepJournal(tmp_path / "run").completed() == {
        "a": {"rows": [2]}}


def test_empty_and_missing_journals(tmp_path):
    journal = SweepJournal(tmp_path / "run")
    assert journal.completed() == {}
    assert journal.read_spec() is None
