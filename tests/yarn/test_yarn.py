"""Tests for the YARN simulator: RM, NM, AM protocol, client."""

import pytest

from repro.cluster import Machine, stampede
from repro.sim import Environment
from repro.yarn import (
    AppSpec,
    ApplicationState,
    CapacityPolicy,
    ContainerRequest,
    ContainerState,
    YarnCluster,
    YarnConfig,
    YarnResource,
)

CFG = YarnConfig()


def make_yarn(num_nodes=3, config=CFG, policy=None):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    cluster = YarnCluster(env, machine, machine.nodes, config=config,
                          policy=policy)
    env.run(env.process(cluster.start()))
    return env, machine, cluster


def simple_am(task_count=2, task_seconds=5.0,
              task_resource=YarnResource(memory_mb=1024, vcores=1),
              trace=None):
    """An AM that runs `task_count` sleep tasks and finishes."""

    def am_program(ctx):
        ctx.request_containers(task_count, task_resource)
        containers = yield from ctx.wait_for_containers(task_count)
        if trace is not None:
            trace.extend(containers)

        def task(env, container):
            yield env.timeout(task_seconds)

        done = [ctx.start_container(c, task) for c in containers]
        yield ctx.env.all_of(done)
        ctx.finish("SUCCEEDED")

    return am_program


def submit_and_wait(env, cluster, spec):
    client = cluster.client()
    out = {}

    def driver():
        app = yield from client.submit(spec)
        out["app"] = app
        report = yield from client.wait_for_completion(app)
        out["report"] = report

    env.run(env.process(driver()))
    return out["app"], out["report"]


def test_application_end_to_end():
    env, machine, cluster = make_yarn()
    trace = []
    spec = AppSpec(name="sleep", am_resource=YarnResource(512, 1),
                   am_program=simple_am(task_count=3, trace=trace))
    app, report = submit_and_wait(env, cluster, spec)
    assert report.state is ApplicationState.FINISHED
    assert len(trace) == 3
    assert all(c.state is ContainerState.COMPLETED for c in trace)


def test_two_phase_allocation_costs_tens_of_seconds():
    """The AM-then-container choreography dominates CU startup (Fig. 5)."""
    env, machine, cluster = make_yarn()
    t = {}

    def am_program(ctx):
        ctx.request_containers(1, YarnResource(1024, 1))
        containers = yield from ctx.wait_for_containers(1)

        def task(env_, c):
            t["task_started"] = env_.now
            yield env_.timeout(1.0)

        yield ctx.start_container(containers[0], task)
        ctx.finish()

    spec = AppSpec(name="probe", am_resource=YarnResource(512, 1),
                   am_program=am_program)
    client = cluster.client()

    def driver():
        t["submit"] = env.now
        app = yield from client.submit(spec)
        yield from client.wait_for_completion(app)

    env.run(env.process(driver()))
    startup = t["task_started"] - t["submit"]
    # client JVM + AM alloc + AM launch + register + request cycle +
    # container launch: well above 15s, below 60s with default config
    assert 15.0 < startup < 60.0


def test_fifo_ordering():
    env, machine, cluster = make_yarn(num_nodes=1)
    # Each app's tasks fill most of the node: apps serialize.
    big = YarnResource(memory_mb=20000, vcores=4)
    order = []

    def make_am(name):
        def am(ctx):
            ctx.request_containers(1, big)
            containers = yield from ctx.wait_for_containers(1)
            order.append(name)

            def task(env_, c):
                yield env_.timeout(10.0)

            yield ctx.start_container(containers[0], task)
            ctx.finish()
        return am

    client = cluster.client()

    def driver():
        a = yield from client.submit(AppSpec(
            name="a", am_resource=YarnResource(512, 1),
            am_program=make_am("a")))
        b = yield from client.submit(AppSpec(
            name="b", am_resource=YarnResource(512, 1),
            am_program=make_am("b")))
        yield env.all_of([a.finished, b.finished])

    env.run(env.process(driver()))
    assert order == ["a", "b"]


def test_container_resource_normalization():
    env, machine, cluster = make_yarn()
    rm = cluster.resource_manager
    normalized = rm._normalize(YarnResource(memory_mb=300, vcores=1))
    assert normalized.memory_mb == 512  # rounded up to 256-increment
    assert rm._normalize(YarnResource(memory_mb=256, vcores=1)).memory_mb == 256


def test_nm_capacity_advertised_fraction():
    env, machine, cluster = make_yarn()
    nm = cluster.node_managers[0]
    # 80% of 32 GB
    assert nm.capacity.memory_mb == int(0.8 * 32 * 1024)
    assert nm.capacity.vcores == 16


def test_scheduler_never_overallocates_node():
    env, machine, cluster = make_yarn(num_nodes=1)
    nm = cluster.node_managers[0]
    max_seen = {"mb": 0}

    def am(ctx):
        # Ask for way more than one node holds.
        ctx.request_containers(10, YarnResource(memory_mb=8192, vcores=2))
        got = yield from ctx.wait_for_containers(3)
        max_seen["mb"] = max(max_seen["mb"], nm.used.memory_mb)

        def task(env_, c):
            yield env_.timeout(2.0)

        yield ctx.env.all_of([ctx.start_container(c, task) for c in got])
        ctx.finish()

    spec = AppSpec(name="greedy", am_resource=YarnResource(512, 1),
                   am_program=am)
    submit_and_wait(env, cluster, spec)
    assert max_seen["mb"] <= nm.capacity.memory_mb


def test_failed_task_container_reported():
    env, machine, cluster = make_yarn()
    seen = {}

    def am(ctx):
        ctx.request_containers(1, YarnResource(1024, 1))
        containers = yield from ctx.wait_for_containers(1)

        def bad_task(env_, c):
            yield env_.timeout(1.0)
            raise ValueError("task blew up")

        yield ctx.start_container(containers[0], bad_task)
        seen["state"] = containers[0].state
        seen["diag"] = containers[0].diagnostics
        ctx.finish("SUCCEEDED")

    spec = AppSpec(name="crashy", am_resource=YarnResource(512, 1),
                   am_program=am)
    app, report = submit_and_wait(env, cluster, spec)
    assert seen["state"] is ContainerState.FAILED
    assert "blew up" in seen["diag"]
    assert report.state is ApplicationState.FINISHED  # AM survived


def test_am_crash_fails_application():
    env, machine, cluster = make_yarn()

    def am(ctx):
        yield ctx.env.timeout(1.0)
        raise RuntimeError("AM died")

    spec = AppSpec(name="dead-am", am_resource=YarnResource(512, 1),
                   am_program=am)
    app, report = submit_and_wait(env, cluster, spec)
    assert report.state is ApplicationState.FAILED


def test_am_reports_failure_status():
    env, machine, cluster = make_yarn()

    def am(ctx):
        yield ctx.env.timeout(1.0)
        ctx.finish("FAILED", diagnostics="business failure")

    spec = AppSpec(name="soft-fail", am_resource=YarnResource(512, 1),
                   am_program=am)
    app, report = submit_and_wait(env, cluster, spec)
    assert report.state is ApplicationState.FAILED
    assert "business failure" in report.tracking_diagnostics


def test_kill_application():
    env, machine, cluster = make_yarn()

    def am(ctx):
        ctx.request_containers(1, YarnResource(1024, 1))
        yield from ctx.wait_for_containers(1)
        yield ctx.env.timeout(10000)

    client = cluster.client()

    def driver():
        app = yield from client.submit(AppSpec(
            name="victim", am_resource=YarnResource(512, 1), am_program=am))
        yield ctx_wait(app)
        client.kill(app.app_id)
        yield app.finished
        return app

    def ctx_wait(app):
        # wait until the app is running
        def waiter():
            while app.state is not ApplicationState.RUNNING:
                yield env.timeout(1.0)
        return env.process(waiter())

    p = env.process(driver())
    app = env.run(p)
    assert app.state is ApplicationState.KILLED
    # all node capacity returned
    for nm in cluster.node_managers:
        assert nm.used.memory_mb == 0


def test_preemption_kills_newest_container():
    env, machine, cluster = make_yarn()
    containers_seen = []

    def am(ctx):
        ctx.request_containers(2, YarnResource(1024, 1))
        got = yield from ctx.wait_for_containers(2)
        containers_seen.extend(got)

        def task(env_, c):
            yield env_.timeout(50.0)

        events = [ctx.start_container(c, task) for c in got]
        yield ctx.env.timeout(20.0)
        ctx.rm.preempt_containers(ctx.app_id, 1)
        yield ctx.env.all_of(events)
        ctx.finish()

    spec = AppSpec(name="preempt-me", am_resource=YarnResource(512, 1),
                   am_program=am)
    app, report = submit_and_wait(env, cluster, spec)
    states = sorted(c.state.value for c in containers_seen)
    assert states == ["completed", "preempted"]


def test_nm_failure_kills_its_containers():
    env, machine, cluster = make_yarn(num_nodes=2)
    result = {}

    def am(ctx):
        # 16 GB containers cannot co-locate on a 26 GB NM: they spread.
        ctx.request_containers(2, YarnResource(16000, 1))
        got = yield from ctx.wait_for_containers(2)

        def task(env_, c):
            yield env_.timeout(100.0)

        events = [ctx.start_container(c, task) for c in got]
        yield ctx.env.timeout(15.0)
        # Fail one node that hosts a task container (not the AM's).
        am_node = ctx.am_container.node_name
        victim_node = next(c.node_name for c in got
                           if c.node_name != am_node)
        cluster.node_manager(victim_node).fail()
        yield ctx.env.all_of(events)
        result["states"] = sorted(c.state.value for c in got)
        ctx.finish()

    spec = AppSpec(name="node-loss", am_resource=YarnResource(512, 1),
                   am_program=am)
    app, report = submit_and_wait(env, cluster, spec)
    assert "killed" in result["states"]


def test_cluster_metrics_shape_and_values():
    env, machine, cluster = make_yarn(num_nodes=2)
    rm = cluster.resource_manager
    metrics = rm.cluster_metrics()
    assert metrics["totalNodes"] == 2
    assert metrics["activeNodes"] == 2
    assert metrics["totalMB"] == 2 * int(0.8 * 32 * 1024)
    assert metrics["availableMB"] == metrics["totalMB"]
    assert metrics["totalVirtualCores"] == 32
    spec = AppSpec(name="m", am_resource=YarnResource(512, 1),
                   am_program=simple_am(task_count=1, task_seconds=1.0))
    submit_and_wait(env, cluster, spec)
    metrics = rm.cluster_metrics()
    assert metrics["appsSubmitted"] == 1
    assert metrics["appsCompleted"] == 1
    assert metrics["availableMB"] == metrics["totalMB"]  # all released


def test_locality_preference_honored_when_space():
    env, machine, cluster = make_yarn(num_nodes=3)
    target = cluster.node_managers[2].name
    got_nodes = []

    def am(ctx):
        ctx.request_containers(1, YarnResource(1024, 1),
                               preferred_nodes=[target])
        got = yield from ctx.wait_for_containers(1)
        got_nodes.extend(c.node_name for c in got)

        def task(env_, c):
            yield env_.timeout(1.0)

        yield ctx.start_container(got[0], task)
        ctx.finish()

    spec = AppSpec(name="local", am_resource=YarnResource(512, 1),
                   am_program=am)
    submit_and_wait(env, cluster, spec)
    assert got_nodes == [target]


def test_locality_relaxes_when_target_full():
    env, machine, cluster = make_yarn(num_nodes=2)
    target_nm = cluster.node_managers[1]
    got_nodes = []

    def am(ctx):
        # First, fill the preferred node completely.
        fill = YarnResource(memory_mb=target_nm.capacity.memory_mb - 1024,
                            vcores=1)
        ctx.request_containers(1, fill, preferred_nodes=[target_nm.name])
        filler = yield from ctx.wait_for_containers(1)

        def long_task(env_, c):
            yield env_.timeout(500.0)

        filler_done = ctx.start_container(filler[0], long_task)
        # Now ask for more than the preferred node has left (1024 MB);
        # it fits on the other node, so delay scheduling must relax.
        ctx.request_containers(1, YarnResource(
            memory_mb=target_nm.capacity.memory_mb - 2048, vcores=1),
            preferred_nodes=[target_nm.name])
        got = yield from ctx.wait_for_containers(1)
        got_nodes.extend(c.node_name for c in got)
        ctx.release_container(got[0])
        ctx.release_container(filler[0])
        yield ctx.env.timeout(1.0)
        ctx.finish()

    spec = AppSpec(name="relax", am_resource=YarnResource(512, 1),
                   am_program=am)
    submit_and_wait(env, cluster, spec)
    assert got_nodes and got_nodes[0] != target_nm.name


def test_capacity_policy_limits_queue():
    policy = CapacityPolicy(queues={"prod": 0.75, "dev": 0.25})
    env, machine, cluster = make_yarn(num_nodes=1, policy=policy)
    nm = cluster.node_managers[0]
    total_mb = nm.capacity.memory_mb
    peak = {"dev": 0}

    def am(ctx):
        # dev queue asks for far more than its 25% share; only two
        # 8%-containers (plus the AM) fit under the cap.
        ctx.request_containers(8, YarnResource(
            memory_mb=int(total_mb * 0.08), vcores=1))
        got = yield from ctx.wait_for_containers(2)
        peak["dev"] = max(peak["dev"], ctx.app.usage.memory_mb)

        def task(env_, c):
            yield env_.timeout(2.0)

        yield ctx.env.all_of([ctx.start_container(c, task) for c in got])
        ctx.finish()

    spec = AppSpec(name="dev-app", queue="dev",
                   am_resource=YarnResource(512, 1), am_program=am)
    submit_and_wait(env, cluster, spec)
    assert peak["dev"] <= total_mb * 0.25 + 512


def test_capacity_policy_rejects_unknown_queue():
    policy = CapacityPolicy(queues={"prod": 1.0})
    env, machine, cluster = make_yarn(num_nodes=1, policy=policy)
    with pytest.raises(ValueError, match="unknown queue"):
        cluster.resource_manager.submit_application(AppSpec(
            name="x", queue="nope", am_resource=YarnResource(512, 1),
            am_program=simple_am()))


def test_capacity_policy_validates_shares():
    with pytest.raises(ValueError, match="sum to 1"):
        CapacityPolicy(queues={"a": 0.5, "b": 0.2})


def test_yarn_resource_arithmetic():
    a = YarnResource(1024, 2)
    b = YarnResource(512, 1)
    assert a.plus(b) == YarnResource(1536, 3)
    assert a.minus(b) == YarnResource(512, 1)
    assert b.fits_in(a)
    assert not a.fits_in(b)
    with pytest.raises(ValueError):
        YarnResource(-1, 1)


def test_stop_cluster_kills_running_apps():
    env, machine, cluster = make_yarn()

    def am(ctx):
        yield ctx.env.timeout(10000)

    client = cluster.client()
    out = {}

    def driver():
        app = yield from client.submit(AppSpec(
            name="stuck", am_resource=YarnResource(512, 1), am_program=am))
        out["app"] = app
        yield env.timeout(30.0)
        cluster.stop()

    env.run(env.process(driver()))
    assert out["app"].state is ApplicationState.KILLED
