"""Tests for the FairScheduler policy and RM REST-style listings."""

import pytest

from repro.cluster import Machine, stampede
from repro.sim import Environment
from repro.yarn import (
    AppSpec,
    ApplicationState,
    FairPolicy,
    YarnCluster,
    YarnConfig,
    YarnResource,
)
from tests.yarn.test_yarn import simple_am, submit_and_wait


def make_yarn(num_nodes=2, policy=None):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    cluster = YarnCluster(env, machine, machine.nodes,
                          config=YarnConfig(), policy=policy)
    env.run(env.process(cluster.start()))
    return env, cluster


def test_fair_policy_orders_by_usage():
    policy = FairPolicy()

    class App:
        def __init__(self, app_id, mb, queue="default"):
            self.app_id = app_id
            self.usage = YarnResource(mb, 1)
            self.queue = queue

    apps = [App("application_0001", 4000), App("application_0002", 100),
            App("application_0003", 2000)]
    ordered = policy.app_order(apps)
    assert [a.app_id for a in ordered] == [
        "application_0002", "application_0003", "application_0001"]


def test_fair_policy_weights():
    policy = FairPolicy(weights={"gold": 4.0})

    class App:
        def __init__(self, app_id, mb, queue):
            self.app_id = app_id
            self.usage = YarnResource(mb, 1)
            self.queue = queue

    # gold has 4x the weight: 4000MB/4 = 1000 effective < plain 2000
    gold = App("application_0001", 4000, "gold")
    plain = App("application_0002", 2000, "default")
    assert policy.app_order([gold, plain])[0] is gold


def test_fair_policy_weight_validation():
    with pytest.raises(ValueError, match="positive"):
        FairPolicy(weights={"q": 0.0})


def test_fair_policy_balances_two_hungry_apps():
    env, cluster = make_yarn(num_nodes=2, policy=FairPolicy())
    grants = {"a": 0, "b": 0}

    def make_am(name, done_evt):
        def am(ctx):
            # keep asking; count what we actually get over a window
            ctx.request_containers(20, YarnResource(4096, 1))
            got = []
            while len(got) < 4:
                granted, _ = yield from ctx.allocate()
                got.extend(granted)
                grants[name] = len(got)

            def task(env_, c):
                yield env_.timeout(60.0)

            for c in got:
                ctx.start_container(c, task)
            done_evt.succeed()
            yield ctx.env.timeout(100.0)
            ctx.finish()
        return am

    client = cluster.client()
    done_a, done_b = env.event(), env.event()

    def driver():
        yield from client.submit(AppSpec(
            name="a", am_resource=YarnResource(512, 1),
            am_program=make_am("a", done_a)))
        yield from client.submit(AppSpec(
            name="b", am_resource=YarnResource(512, 1),
            am_program=make_am("b", done_b)))
        yield env.all_of([done_a, done_b])

    env.run(env.process(driver()))
    # both made progress side by side rather than FIFO starving one
    assert grants["a"] >= 4 and grants["b"] >= 4


def test_application_list_shape():
    env, cluster = make_yarn()
    spec = AppSpec(name="probe", am_resource=YarnResource(512, 1),
                   am_program=simple_am(task_count=1, task_seconds=1.0))
    submit_and_wait(env, cluster, spec)
    apps = cluster.resource_manager.application_list()
    assert len(apps) == 1
    entry = apps[0]
    assert entry["name"] == "probe"
    assert entry["state"] == ApplicationState.FINISHED.value
    assert entry["runningContainers"] == 0
    assert entry["startedTime"] is not None


def test_node_reports_shape():
    env, cluster = make_yarn(num_nodes=2)
    reports = cluster.resource_manager.node_reports()
    assert len(reports) == 2
    assert all(r["state"] == "RUNNING" for r in reports)
    cluster.node_managers[0].fail()
    reports = cluster.resource_manager.node_reports()
    assert sorted(r["state"] for r in reports) == ["LOST", "RUNNING"]
