"""Tests for the HDFS simulator."""

import pytest

from repro.cluster import Machine, stampede
from repro.cluster.storage import MB
from repro.hdfs import HdfsCluster
from repro.sim import Environment, SeedSequenceRegistry, SimulationError


def make_hdfs(num_nodes=3, replication=3, block_size=128 * MB):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    rng = SeedSequenceRegistry(7).stream("hdfs")
    hdfs = HdfsCluster(env, machine, machine.nodes,
                       replication=replication, block_size=block_size,
                       rng=rng)
    env.run(env.process(hdfs.start()))
    return env, machine, hdfs


def test_cluster_start_costs_time():
    env, machine, hdfs = make_hdfs()
    assert hdfs.running
    # NameNode (12s) + DataNodes in parallel (8s)
    assert env.now == pytest.approx(20.0)


def test_put_creates_blocks_of_block_size():
    env, _, hdfs = make_hdfs(block_size=128 * MB)
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/data/file1", 300 * MB))

    env.run(env.process(driver()))
    meta = hdfs.namenode.file_meta("/data/file1")
    sizes = [b.nbytes for b in meta.blocks]
    assert sizes == [128 * MB, 128 * MB, 44 * MB]
    assert meta.nbytes == 300 * MB


def test_put_replicates_to_factor():
    env, _, hdfs = make_hdfs(num_nodes=3, replication=3)
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/f", 10 * MB))

    env.run(env.process(driver()))
    locations = client.block_locations("/f")
    nodes = {r.node_name for r in locations}
    assert len(nodes) == 3


def test_replication_capped_by_cluster_size():
    env, _, hdfs = make_hdfs(num_nodes=2, replication=3)
    assert hdfs.namenode.replication == 2


def test_writer_local_first_replica():
    env, _, hdfs = make_hdfs()
    writer = hdfs.nodes[1].name
    client = hdfs.client(writer)

    def driver():
        yield env.process(client.put("/f", 10 * MB))

    env.run(env.process(driver()))
    first_block = hdfs.namenode.file_meta("/f").blocks[0]
    assert hdfs.namenode.block_map[first_block.block_id][0] == writer


def test_duplicate_put_rejected():
    env, _, hdfs = make_hdfs()
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/f", 1 * MB))

    env.run(env.process(driver()))
    with pytest.raises(FileExistsError):
        hdfs.namenode.split_into_blocks("/f", 1.0)


def test_read_returns_payloads_in_order():
    env, _, hdfs = make_hdfs(block_size=10 * MB)
    client = hdfs.client(hdfs.master_node.name)
    result = {}

    def driver():
        yield env.process(client.put("/f", 30 * MB,
                                     payload_slices=["a", "b", "c"]))
        proc = env.process(client.read("/f"))
        payloads = yield proc
        result["payloads"] = payloads

    env.run(env.process(driver()))
    assert result["payloads"] == ["a", "b", "c"]


def test_read_missing_file():
    env, _, hdfs = make_hdfs()
    client = hdfs.client(None)
    with pytest.raises(FileNotFoundError):
        hdfs.namenode.file_meta("/nope")


def test_local_read_prefers_local_replica():
    env, _, hdfs = make_hdfs(num_nodes=3, replication=3)
    node = hdfs.nodes[2].name
    client = hdfs.client(node)

    def driver():
        yield env.process(client.put("/f", 10 * MB))
        dn = hdfs.datanode(node)
        before = dn.bytes_read
        yield env.process(client.read("/f"))
        assert dn.bytes_read > before  # served locally

    env.run(env.process(driver()))


def test_delete_frees_replica_space():
    env, _, hdfs = make_hdfs()
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/f", 12 * MB))

    env.run(env.process(driver()))
    used_before = sum(dn.node.local_disk.used for dn in hdfs.datanodes)
    assert used_before == 36 * MB  # 3 replicas
    client.delete("/f")
    used_after = sum(dn.node.local_disk.used for dn in hdfs.datanodes)
    assert used_after == 0
    assert not client.exists("/f")


def test_block_locations_counts():
    env, _, hdfs = make_hdfs(block_size=10 * MB, replication=2)
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/f", 25 * MB))

    env.run(env.process(driver()))
    locations = client.block_locations("/f")
    # 3 blocks x 2 replicas
    assert len(locations) == 6


def test_datanode_failure_then_reread_from_survivor():
    env, _, hdfs = make_hdfs(num_nodes=3, replication=2)
    client = hdfs.client(None)

    def driver():
        yield env.process(client.put("/f", 10 * MB))
        block = hdfs.namenode.file_meta("/f").blocks[0]
        holders = hdfs.namenode.block_map[block.block_id]
        hdfs.datanode(holders[0]).fail()
        payloads = yield env.process(client.read("/f"))
        return payloads

    env.run(env.process(driver()))  # must not raise


def test_all_replicas_lost_raises():
    env, _, hdfs = make_hdfs(num_nodes=3, replication=1)
    client = hdfs.client(None)

    def driver():
        yield env.process(client.put("/f", 10 * MB))
        block = hdfs.namenode.file_meta("/f").blocks[0]
        for name in hdfs.namenode.block_map[block.block_id]:
            hdfs.datanode(name).fail()
        with pytest.raises(SimulationError, match="no live replica"):
            yield env.process(client.read("/f"))

    env.run(env.process(driver()))


def test_under_replication_detection_and_repair():
    env, _, hdfs = make_hdfs(num_nodes=3, replication=2)
    client = hdfs.client(None)

    def driver():
        yield env.process(client.put("/f", 10 * MB))
        block = hdfs.namenode.file_meta("/f").blocks[0]
        lost = hdfs.namenode.block_map[block.block_id][0]
        hdfs.datanode(lost).fail()
        assert hdfs.namenode.under_replicated() == [block]
        yield env.process(hdfs.namenode.handle_datanode_loss(lost))
        assert hdfs.namenode.under_replicated() == []
        live = hdfs.namenode._live_replica_nodes(block.block_id)
        assert len(live) == 2

    env.run(env.process(driver()))


def test_stop_cluster():
    env, _, hdfs = make_hdfs()
    hdfs.stop()
    assert not hdfs.running
    assert all(not dn.alive for dn in hdfs.datanodes)


def test_store_on_dead_datanode_rejected():
    env, _, hdfs = make_hdfs()
    dn = hdfs.datanodes[0]
    dn.fail()
    block = hdfs.namenode.split_into_blocks("/x", 1 * MB)[0]
    with pytest.raises(SimulationError, match="down"):
        dn.store(block)


def test_zero_byte_file_single_empty_block():
    env, _, hdfs = make_hdfs()
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/empty", 0))

    env.run(env.process(driver()))
    meta = hdfs.namenode.file_meta("/empty")
    assert len(meta.blocks) == 1
    assert meta.nbytes == 0
