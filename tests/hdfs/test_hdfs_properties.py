"""Property-based tests of HDFS invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, stampede
from repro.cluster.storage import MB
from repro.hdfs import HdfsCluster
from repro.sim import Environment, SeedSequenceRegistry


def fresh_hdfs(num_nodes=4, replication=3, block_size=16 * MB):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    hdfs = HdfsCluster(env, machine, machine.nodes,
                       replication=replication, block_size=block_size,
                       rng=SeedSequenceRegistry(5).stream("p"))
    env.run(env.process(hdfs.start()))
    return env, hdfs


@given(nbytes=st.integers(min_value=0, max_value=200 * 1024 ** 2),
       block_mb=st.integers(min_value=1, max_value=64))
@settings(max_examples=40, deadline=None)
def test_block_math(nbytes, block_mb):
    """Blocks tile the file exactly: full blocks + one ragged tail."""
    env, hdfs = fresh_hdfs(block_size=block_mb * MB)
    blocks = hdfs.namenode.split_into_blocks("/f", nbytes)
    assert sum(b.nbytes for b in blocks) == nbytes
    assert [b.index for b in blocks] == list(range(len(blocks)))
    for b in blocks[:-1]:
        assert b.nbytes == block_mb * MB
    assert blocks[-1].nbytes <= block_mb * MB


@given(nbytes=st.integers(min_value=1, max_value=100 * 1024 ** 2),
       num_nodes=st.integers(min_value=1, max_value=6),
       replication=st.integers(min_value=1, max_value=5))
@settings(max_examples=25, deadline=None)
def test_replication_invariants(nbytes, num_nodes, replication):
    """Each block has min(replication, nodes) replicas on distinct nodes."""
    env, hdfs = fresh_hdfs(num_nodes=num_nodes, replication=replication)
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put("/f", nbytes))

    env.run(env.process(driver()))
    expected = min(replication, num_nodes)
    for block in hdfs.namenode.file_meta("/f").blocks:
        holders = hdfs.namenode.block_map[block.block_id]
        assert len(holders) == expected
        assert len(set(holders)) == expected  # distinct nodes


@given(sizes=st.lists(st.integers(min_value=1, max_value=20 * 1024 ** 2),
                      min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_namespace_accounting(sizes):
    """total_bytes equals the sum of all file sizes; delete restores."""
    env, hdfs = fresh_hdfs()
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        for i, size in enumerate(sizes):
            yield env.process(client.put(f"/f{i}", size))

    env.run(env.process(driver()))
    assert hdfs.namenode.total_bytes() == sum(sizes)
    for i in range(len(sizes)):
        client.delete(f"/f{i}")
    assert hdfs.namenode.total_bytes() == 0
    assert all(dn.node.local_disk.used == 0 for dn in hdfs.datanodes)
