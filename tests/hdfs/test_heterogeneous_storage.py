"""Tests for HDFS heterogeneous storage (§II: active archival use case)."""

import pytest

from repro.cluster import Machine, stampede
from repro.cluster.storage import MB
from repro.hdfs import HdfsCluster
from repro.hdfs.datanode import ARCHIVE, DISK, RAM_DISK
from repro.sim import Environment, SeedSequenceRegistry, SimulationError


def make_hdfs(num_nodes=3, replication=2):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    hdfs = HdfsCluster(env, machine, machine.nodes,
                       replication=replication,
                       rng=SeedSequenceRegistry(9).stream("het"))
    env.run(env.process(hdfs.start()))
    return env, machine, hdfs


def put(env, hdfs, path, nbytes):
    client = hdfs.client(hdfs.master_node.name)

    def driver():
        yield env.process(client.put(path, nbytes))

    env.run(env.process(driver()))
    return client


def replica_types(hdfs, path):
    types = []
    for block in hdfs.namenode.file_meta(path).blocks:
        for name in hdfs.namenode.block_map[block.block_id]:
            types.append(hdfs.datanode(name).storage_type_of(
                block.block_id))
    return types


def test_default_policy_is_hot():
    env, machine, hdfs = make_hdfs()
    put(env, hdfs, "/data/file", 10 * MB)
    assert hdfs.namenode.policy_for("/data/file") == "HOT"
    assert set(replica_types(hdfs, "/data/file")) == {DISK}


def test_cold_policy_archives_all_replicas():
    env, machine, hdfs = make_hdfs()
    hdfs.namenode.set_storage_policy("/archive/", "COLD")
    put(env, hdfs, "/archive/run-0042.tar", 40 * MB)
    assert set(replica_types(hdfs, "/archive/run-0042.tar")) == {ARCHIVE}
    # archive capacity charged, local disks untouched by this file
    archived = sum(dn.archive.used for dn in hdfs.datanodes)
    assert archived == 80 * MB  # 2 replicas


def test_warm_policy_mixes_tiers():
    env, machine, hdfs = make_hdfs(replication=2)
    hdfs.namenode.set_storage_policy("/warm/", "WARM")
    put(env, hdfs, "/warm/f", 10 * MB)
    types = replica_types(hdfs, "/warm/f")
    assert sorted(types) == [ARCHIVE, DISK]


def test_lazy_persist_uses_ram():
    env, machine, hdfs = make_hdfs(replication=2)
    hdfs.namenode.set_storage_policy("/scratchpad/", "LAZY_PERSIST")
    put(env, hdfs, "/scratchpad/tmp", 10 * MB)
    types = replica_types(hdfs, "/scratchpad/tmp")
    assert RAM_DISK in types and DISK in types


def test_longest_prefix_wins():
    env, machine, hdfs = make_hdfs()
    hdfs.namenode.set_storage_policy("/a/", "COLD")
    hdfs.namenode.set_storage_policy("/a/hot/", "HOT")
    assert hdfs.namenode.policy_for("/a/x") == "COLD"
    assert hdfs.namenode.policy_for("/a/hot/x") == "HOT"
    assert hdfs.namenode.policy_for("/elsewhere") == "HOT"


def test_unknown_policy_rejected():
    env, machine, hdfs = make_hdfs()
    with pytest.raises(SimulationError, match="storage policy"):
        hdfs.namenode.set_storage_policy("/x/", "LUKEWARM")


def test_archive_reads_slower_than_disk():
    env, machine, hdfs = make_hdfs(replication=1)
    hdfs.namenode.set_storage_policy("/cold/", "COLD")
    put(env, hdfs, "/hot", 60 * MB)
    put(env, hdfs, "/cold/f", 60 * MB)
    client = hdfs.client(None)
    spans = {}

    def timed_read(path, key):
        def driver():
            t0 = env.now
            yield env.process(client.read(path))
            spans[key] = env.now - t0
        env.run(env.process(driver()))

    timed_read("/hot", "hot")
    timed_read("/cold/f", "cold")
    assert spans["cold"] > spans["hot"] * 2


def test_delete_frees_the_right_tier():
    env, machine, hdfs = make_hdfs()
    hdfs.namenode.set_storage_policy("/archive/", "COLD")
    client = put(env, hdfs, "/archive/f", 12 * MB)
    assert sum(dn.archive.used for dn in hdfs.datanodes) > 0
    client.delete("/archive/f")
    assert sum(dn.archive.used for dn in hdfs.datanodes) == 0
    assert all(dn.node.local_disk.used == 0 for dn in hdfs.datanodes)
