"""Recovery paths: UM restarts, routing, pilot loss, YARN re-attempts."""

import pytest

from repro.api import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    RestartPolicy,
    Session,
    UnitManager,
    UnitState,
)
from repro.cluster import stampede
from repro.saga import Registry, Site
from repro.sim import Environment
from repro.yarn import YarnConfig
from tests.conftest import FAST_RMS
from tests.core.test_units import active_pilot, fast_agent


def restart_umgr(session, **policy_kw):
    defaults = dict(max_restarts=2, backoff=0.5, backoff_factor=2.0,
                    backoff_cap=8.0)
    defaults.update(policy_kw)
    return UnitManager(session, restart_policy=RestartPolicy(**defaults))


def test_poisoned_unit_recovers_under_new_uid(stack):
    env, registry, session, pmgr, umgr = stack
    umgr = restart_umgr(session)
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(cores=1,
                                                     cpu_seconds=5.0))
    session.faults.unit_error(units[0].uid, times=1)
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.FAILED          # first attempt died
    final = umgr.final_unit(units[0])
    assert final.state is UnitState.DONE               # the work item won
    assert final.uid != units[0].uid
    assert umgr._restarts_used == {units[0].uid: 1}


def test_max_restarts_is_a_hard_cap(stack):
    env, registry, session, pmgr, umgr = stack
    umgr = restart_umgr(session, max_restarts=2)
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(cores=1,
                                                     cpu_seconds=5.0))
    session.faults.unit_error(units[0].uid, times=10)  # always poisoned
    env.run(umgr.wait_units(units))
    final = umgr.final_unit(units[0])
    assert final.state is UnitState.FAILED
    assert umgr._restarts_used[units[0].uid] == 2
    # 1 original + 2 restarts were attempted, no more
    root = units[0].uid
    attempts = [u for u, r in umgr._roots.items() if r == root]
    assert len(attempts) == 3


def test_restart_backoff_timing_is_exact(stack):
    env, registry, session, pmgr, umgr = stack
    umgr = restart_umgr(session, max_restarts=3, backoff=3.0,
                        backoff_factor=2.0, backoff_cap=100.0)
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(cores=1,
                                                     cpu_seconds=5.0))
    session.faults.unit_error(units[0].uid, times=2)   # fail, fail, done
    env.run(umgr.wait_units(units))
    root = units[0].uid
    chain = sorted(u for u, r in umgr._roots.items() if r == root)
    assert len(chain) == 3
    for n, (prev, cur) in enumerate(zip(chain, chain[1:]), start=1):
        failed_at = umgr.units[prev].timestamp(UnitState.FAILED)
        resubmitted_at = umgr.units[cur].timestamp(UnitState.NEW)
        assert resubmitted_at - failed_at == pytest.approx(3.0 * 2 ** (n - 1))
    assert umgr.final_unit(units[0]).state is UnitState.DONE


def test_restart_routes_away_from_failed_pilot(stack):
    env, registry, session, pmgr, umgr = stack
    umgr = restart_umgr(session)
    active_pilot(env, pmgr, umgr, nodes=1)
    active_pilot(env, pmgr, umgr, nodes=1)
    units = umgr.submit_units(ComputeUnitDescription(cores=1,
                                                     cpu_seconds=5.0))
    session.faults.unit_error(units[0].uid, times=1)
    env.run(umgr.wait_units(units))
    final = umgr.final_unit(units[0])
    assert final.state is UnitState.DONE
    root = units[0].uid
    assert final.pilot_uid not in umgr._failed_pilots_of[root]
    assert units[0].pilot_uid in umgr._failed_pilots_of[root]


def test_units_stranded_on_failed_pilot_are_restarted():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=3),
                           rms_config=FAST_RMS))
    session = Session(env, registry)
    pmgr = PilotManager(session, heartbeat_timeout=20.0,
                        heartbeat_check_interval=5.0)
    umgr = restart_umgr(session, backoff=1.0)
    # Pilot 0 hangs after going ACTIVE (poll interval beyond the
    # heartbeat timeout); pilot 1 is healthy.
    hung = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(db_poll_interval=1e6)))
    healthy = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots([hung, healthy])
    env.run(env.all_of([hung.wait(PilotState.ACTIVE),
                        healthy.wait(PilotState.ACTIVE)]))
    units = umgr.submit_units([ComputeUnitDescription(cores=1,
                                                      cpu_seconds=5.0)
                               for _ in range(2)])
    # RoundRobin dealt unit 0 to the hung pilot, unit 1 to the healthy
    assert units[0].pilot_uid == hung.uid
    env.run(umgr.wait_units(units))
    assert hung.state is PilotState.FAILED
    for unit in units:
        final = umgr.final_unit(unit)
        assert final.state is UnitState.DONE
        assert final.pilot_uid == healthy.uid
    # the stranded unit was failed by the pilot watch, then restarted
    assert "pilot" in units[0].stderr
    assert umgr._restarts_used[units[0].uid] == 1


def test_yarn_am_reattempts_absorb_container_kill(stack):
    env, registry, session, pmgr, umgr = stack
    plan = session.faults         # install before the Mode I cluster
    tel = session.telemetry
    active_pilot(env, pmgr, umgr, nodes=2, lrm="yarn",
                 hadoop_dist_bytes=float(10 * 1024 ** 2),
                 configure_seconds=0.5,
                 yarn_config=YarnConfig(am_max_attempts=3,
                                        am_retry_backoff=0.5,
                                        am_retry_backoff_cap=2.0))
    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, cpu_seconds=60.0, memory_mb=1024))
    env.run(units[0].wait(UnitState.EXECUTING))
    plan.container_kill(at=env.now + 2.0)
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.DONE            # same handle, no UM restart
    assert tel.counter("yarn.am.reattempts").total == 1
    assert [s.kind for s in plan.injector.fired] == ["container_kill"]
