"""Chaos sweep: grid shape, determinism, and scenario invariants."""

from repro.experiments.chaos import run_chaos_bag, run_nm_loss
from repro.experiments.sweeps import (
    build_cells,
    chaos_cells,
    run_cell,
    run_sweep,
)


def _cell(kind, **params):
    matches = [c for c in chaos_cells(42)
               if c.kind == kind
               and all(dict(c.params).get(k) == v
                       for k, v in params.items())]
    assert matches, (kind, params)
    return matches[0]


def test_chaos_grid_shape():
    assert len(chaos_cells(42)) == 5
    assert len(chaos_cells(42, quick=True)) == 4
    assert build_cells("chaos", 42) == chaos_cells(42)
    kinds = {c.kind for c in chaos_cells(42)}
    assert kinds == {"bag", "nm-loss", "hdfs-heal"}


def test_hdfs_heal_cell_restores_replication_and_is_hermetic():
    cell = _cell("hdfs-heal")
    first, second = run_cell(cell), run_cell(cell)
    assert first["rows"] == second["rows"]
    row = first["rows"][0]
    assert row["rf_before"] == 2
    assert row["rf_after_loss"] == 1
    assert row["rf_restored"] == 2     # replication factor restored
    assert row["mttr"] > 0


def test_chaos_bag_restarts_recover_every_poisoned_unit():
    clean = run_chaos_bag(fault_rate=0.0, ntasks=8, seed=7)
    chaotic = run_chaos_bag(fault_rate=0.5, ntasks=8, seed=7)
    assert clean.poisoned == 0 and clean.restarts == 0
    assert clean.done == chaotic.done == 8
    assert chaotic.poisoned == 4
    assert chaotic.restarts == 4       # one restart per poisoned unit
    assert chaotic.recovered == 4      # each finished under a new uid
    assert chaotic.makespan > clean.makespan


def test_nm_loss_reattempts_finish_every_unit():
    row = run_nm_loss(ntasks=6, seed=7)
    assert row.done == row.units == 6
    assert row.nodes_lost == 1
    assert row.reattempts >= 1


def test_chaos_sweep_parallel_matches_sequential():
    cells = [_cell("bag", fault_rate=0.25), _cell("hdfs-heal")]
    sequential = run_sweep("chaos", root_seed=42, jobs=1, cells=cells)
    parallel = run_sweep("chaos", root_seed=42, jobs=2, cells=cells)
    assert parallel.aggregate_json() == sequential.aggregate_json()
    assert parallel.digest() == sequential.digest()


def test_chaos_cell_identical_with_sanitizer_armed(monkeypatch):
    cell = _cell("bag", fault_rate=0.25)
    plain = run_cell(cell)["rows"]
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_cell(cell)["rows"]
    assert sanitized == plain
