"""Injector mechanics: each fault kind's failure and healing edges."""

import pytest

from repro.cluster import Machine, stampede
from repro.cluster.storage import MB
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.hdfs import HdfsCluster
from repro.sim import Environment, SimulationError
from repro.yarn import YarnCluster


def make_machine(env, nodes=3):
    """Machine built *after* the plan so it registers as a target."""
    return Machine(env, stampede(num_nodes=nodes))


def test_install_is_idempotent_and_plan_installs_eagerly():
    env = Environment()
    assert env.faults is None
    plan = FaultPlan(env=env)
    assert env.faults is plan.injector
    assert FaultInjector.install(env) is plan.injector
    FaultInjector.uninstall(env)
    assert env.faults is None


def test_plan_requires_session_or_env():
    with pytest.raises(SimulationError, match="session or an env"):
        FaultPlan()


def test_node_crash_fires_and_heals():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env)
    node = machine.nodes[1]
    plan.node_crash(at=5.0, node=node.name, duration=10.0)
    env.run(until=6.0)
    assert not node.alive and node.failed_at == 5.0
    env.run(until=16.0)
    assert node.alive
    assert [s.kind for s in plan.injector.fired] == ["node_crash"]


def test_node_failure_event_fires_at_injection_instant():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env)
    node = machine.nodes[0]
    seen = {}

    def watcher():
        yield node.failure_event()
        seen["at"] = env.now

    env.process(watcher())
    plan.node_crash(at=7.5, node=node.name)
    env.run(until=20.0)
    assert seen["at"] == 7.5
    # dead node: waiters resume immediately
    assert node.failure_event().triggered


def test_straggler_slows_then_restores():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env)
    node = machine.nodes[0]
    base = node.cpu_speed
    plan.straggler(at=1.0, node=node.name, factor=4.0, duration=3.0)
    env.run(until=2.0)
    assert node.cpu_speed == base / 4.0
    assert node.compute_seconds(10.0) == pytest.approx(40.0 / base)
    env.run(until=5.0)
    assert node.cpu_speed == base


def test_network_degrade_scales_bandwidth_then_restores():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env)
    fabric = machine.network
    base_agg = fabric.backbone.aggregate_bw
    plan.network_degrade(at=0.0, factor=0.25, duration=5.0)
    env.run(until=1.0)
    assert fabric.degrade_factor == 0.25
    assert fabric.backbone.aggregate_bw == pytest.approx(base_agg * 0.25)
    env.run(until=6.0)
    assert fabric.degrade_factor == 1.0
    assert fabric.backbone.aggregate_bw == pytest.approx(base_agg)


def test_partition_holds_crossing_transfers_until_heal():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env)
    a, b, c = (n.name for n in machine.nodes[:3])
    plan.network_partition(at=0.0, group=a, duration=10.0)
    env.run(until=1.0)
    fabric = machine.network
    assert fabric.is_partitioned(a, b) and fabric.is_partitioned(b, a)
    assert not fabric.is_partitioned(b, c)
    crossing = fabric.send(a, b, 64 * MB)
    same_side = fabric.send(b, c, 64 * MB)
    env.run(until=9.0)
    assert same_side.triggered
    assert not crossing.triggered  # held by the cut
    env.run(until=30.0)
    assert crossing.triggered      # released at heal, then transferred
    assert not fabric.is_partitioned(a, b)


def test_unit_error_ledger_take_and_transfer():
    env = Environment()
    plan = FaultPlan(env=env)
    plan.unit_error("unit.000001", times=2)
    injector = plan.injector
    assert injector.take_unit_error("unit.000042") is None
    first = injector.take_unit_error("unit.000001")
    assert first is not None and "unit.000001" in first
    # restart under a new uid carries the remaining poison along
    injector.transfer_unit_error("unit.000001", "unit.000099")
    assert injector.take_unit_error("unit.000001") is None
    assert injector.take_unit_error("unit.000099") is not None
    assert injector.take_unit_error("unit.000099") is None


def test_unknown_targets_raise():
    env = Environment()
    plan = FaultPlan(env=env)
    make_machine(env)
    with pytest.raises(SimulationError, match="not found on any"):
        plan.injector.fire(FaultSpec(kind="node_crash", target="ghost"))
    with pytest.raises(SimulationError, match="DataNode"):
        plan.injector.fire(FaultSpec(kind="datanode_loss", target="ghost"))
    with pytest.raises(SimulationError, match="NodeManager"):
        plan.injector.fire(
            FaultSpec(kind="nodemanager_loss", target="ghost"))


def test_container_kill_without_yarn_is_a_noop():
    env = Environment()
    plan = FaultPlan(env=env)
    plan.container_kill(at=1.0)
    env.run(until=2.0)
    assert [s.kind for s in plan.injector.fired] == ["container_kill"]


def test_datanode_fail_releases_capacity_ledger():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env, nodes=3)
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2)
    env.run(env.process(hdfs.start()))
    client = hdfs.client(hdfs.master_node.name)
    env.run(env.process(client.put("/ledger/f0", 128 * MB)))
    victim = next(dn for dn in hdfs.datanodes if dn.blocks)
    held = sum(b.nbytes for b in victim.blocks.values())
    disk = victim.node.local_disk
    used_before = disk.used
    assert held > 0
    plan.datanode_loss(at=env.now + 1.0, node=victim.name)
    env.run(until=env.now + 2.0)
    assert not victim.alive and victim.failed_at is not None
    assert not victim.blocks and not victim.block_storage
    assert disk.used == pytest.approx(used_before - held)


def test_replication_monitor_restores_replication_factor():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env, nodes=3)
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       auto_heal=True, heal_interval=1.0, dn_timeout=2.0)
    env.run(env.process(hdfs.start()))
    client = hdfs.client(hdfs.master_node.name)
    env.run(env.process(client.put("/heal/f0", 128 * MB)))
    nn = hdfs.namenode
    assert nn.replication_factor_of("/heal/f0") == 2
    victim = next(dn for dn in hdfs.datanodes
                  if dn.name != hdfs.master_node.name and dn.blocks)
    plan.datanode_loss(at=env.now + 1.0, node=victim.name)
    env.run(until=env.now + 2.0)
    assert nn.replication_factor_of("/heal/f0") == 1
    env.run(until=env.now + 60.0)
    assert nn.replication_factor_of("/heal/f0") == 2
    assert not nn.under_replicated()
    hdfs.stop()


def test_rm_expires_lost_node_and_reclaims_capacity():
    env = Environment()
    plan = FaultPlan(env=env)
    machine = make_machine(env, nodes=2)
    yarn = YarnCluster(env, machine, machine.nodes)
    env.run(env.process(yarn.start()))
    victim = yarn.node_managers[1]
    plan.nodemanager_loss(at=env.now + 2.0, node=victim.name)
    # nm_heartbeat=1.0 x nm_liveness_heartbeats=3: lost within ~5s
    env.run(until=env.now + 10.0)
    rm = yarn.resource_manager
    assert victim.name in rm.lost_nodes
    assert not victim.alive and victim.failed_at is not None
    assert victim.used.memory_mb == 0 and not victim.containers
