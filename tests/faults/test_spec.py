"""FaultSpec / RestartPolicy validation and the backoff schedule."""

import pytest

from repro.api import DescriptionError, FaultSpec, RestartPolicy


# ----------------------------------------------------------------- FaultSpec
def test_valid_specs_chain():
    spec = FaultSpec(kind="node_crash", at=10.0, target="n0")
    assert spec.validate() is spec


@pytest.mark.parametrize("kwargs,fragment", [
    (dict(kind="meteor", target="n0"), "unknown fault kind"),
    (dict(kind="node_crash", target="n0", at=-1.0), "non-negative"),
    (dict(kind="node_crash", target=""), "needs a target"),
    (dict(kind="unit_error", target=""), "needs a target"),
    (dict(kind="unit_error", target="u0", times=0), "times >= 1"),
    (dict(kind="node_crash", target="n0", duration=0.0),
     "duration must be positive"),
    (dict(kind="network_degrade", factor=0.0), "factor"),
    (dict(kind="network_degrade", factor=1.5), "factor"),
    (dict(kind="straggler", target="n0", factor=0.5), "factor"),
    (dict(kind="network_partition", target="a,b"), "duration"),
    (dict(kind="network_partition", target="", duration=5.0), "target"),
])
def test_invalid_specs_raise(kwargs, fragment):
    with pytest.raises(DescriptionError, match=fragment):
        FaultSpec(**kwargs).validate()


def test_fault_spec_is_a_description():
    spec = FaultSpec.from_dict(
        {"kind": "straggler", "at": 5.0, "target": "n1", "factor": 2.0})
    assert spec.factor == 2.0
    with pytest.raises(DescriptionError, match="unknown FaultSpec fields"):
        FaultSpec.from_dict({"kind": "node_crash", "blast_radius": 3})
    clone = spec.replace(factor=4.0)
    assert (clone.factor, spec.factor) == (4.0, 2.0)
    with pytest.raises(DescriptionError):
        spec.replace(factor=0.5)


def test_partition_group_parses_target():
    spec = FaultSpec(kind="network_partition", at=1.0,
                     target="n1, n2,n3", duration=10.0).validate()
    assert spec.partition_group() == frozenset({"n1", "n2", "n3"})


def test_label_defaults_to_kind_and_time():
    assert FaultSpec(kind="node_crash", at=12.5,
                     target="n0").label == "node_crash@12.5"
    assert FaultSpec(kind="node_crash", at=1.0, target="n0",
                     name="blackout").label == "blackout"


# -------------------------------------------------------------- RestartPolicy
def test_backoff_schedule_is_exact_capped_exponential():
    policy = RestartPolicy(max_restarts=6, backoff=1.5,
                           backoff_factor=2.0, backoff_cap=10.0)
    policy.validate()
    assert [policy.delay(n) for n in range(1, 6)] == [
        1.5, 3.0, 6.0, 10.0, 10.0]


def test_restart_policy_rejects_bad_fields():
    with pytest.raises(DescriptionError):
        RestartPolicy(max_restarts=-1).validate()
    with pytest.raises(DescriptionError):
        RestartPolicy(backoff_factor=0.5).validate()
    with pytest.raises(DescriptionError):
        RestartPolicy(backoff=5.0, backoff_cap=1.0).validate()
    with pytest.raises(DescriptionError):
        RestartPolicy().delay(0)
