"""Tests for the SAGA layer: URLs, registry, job API, filesystem."""

import pytest

from repro.cluster import stampede, wrangler
from repro.cluster.storage import MB
from repro.rms import RmsConfig
from repro.saga import (
    Description,
    Registry,
    Service,
    Site,
    Url,
    copy_file,
    default_registry,
)
from repro.saga import job as saga_job
from repro.sim import Environment

FAST = RmsConfig(submit_latency=0.5, schedule_interval=1.0,
                 prolog_seconds=1.0, epilog_seconds=0.5)


@pytest.fixture()
def testbed():
    env = Environment()
    registry = Registry()
    site = registry.register(Site(env, stampede(num_nodes=3),
                                  rms_kind="slurm", rms_config=FAST))
    return env, registry, site


# ----------------------------------------------------------------- URLs
def test_url_parse_full():
    url = Url.parse("slurm://stampede/scratch/x")
    assert (url.scheme, url.host, url.path) == ("slurm", "stampede",
                                                "/scratch/x")


def test_url_parse_no_path():
    url = Url.parse("slurm://stampede")
    assert url.path == "/"


def test_url_rejects_malformed():
    for bad in ("stampede", "://host", "slurm://"):
        with pytest.raises(ValueError):
            Url.parse(bad)


def test_url_str_roundtrip():
    assert str(Url.parse("sge://wrangler/a/b")) == "sge://wrangler/a/b"


# ------------------------------------------------------------- registry
def test_registry_lookup(testbed):
    _, registry, site = testbed
    assert registry.lookup("stampede") is site
    assert "stampede" in registry
    with pytest.raises(KeyError, match="no registered site"):
        registry.lookup("comet")


def test_default_registry_is_shared():
    assert default_registry() is default_registry()


# ------------------------------------------------------------ job API
def test_service_adaptor_mismatch(testbed):
    env, registry, site = testbed
    with pytest.raises(ValueError, match="adaptor mismatch"):
        Service("torque://stampede", registry)


def test_service_unknown_scheme(testbed):
    env, registry, site = testbed
    with pytest.raises(ValueError, match="unsupported"):
        Service("lsf://stampede", registry)


def test_job_lifecycle_through_saga(testbed):
    env, registry, site = testbed
    service = Service("slurm://stampede", registry)
    trace = []

    def payload(env_, batch_job):
        trace.append(("nodes", len(batch_job.allocation)))
        yield env_.timeout(5)

    job = service.create_job(Description(
        executable="sleep", number_of_nodes=2, wall_time_limit=10,
        payload=payload))
    assert job.state == saga_job.NEW

    def driver():
        job.run()
        yield job.wait()

    env.run(env.process(driver()))
    assert job.state == saga_job.DONE
    assert trace == [("nodes", 2)]
    assert "slurm://stampede" in job.id


def test_job_wall_time_minutes_conversion(testbed):
    env, registry, site = testbed
    service = Service("slurm://stampede", registry)
    job = service.create_job(Description(wall_time_limit=2))
    job.run()
    assert job.batch_job.description.walltime == 120.0


def test_job_cancel_maps_state(testbed):
    env, registry, site = testbed
    service = Service("slurm://stampede", registry)

    def payload(env_, bj):
        yield env_.timeout(1000)

    job = service.create_job(Description(payload=payload))

    def driver():
        job.run()
        yield job.wait_started()
        job.cancel()
        yield job.wait()

    env.run(env.process(driver()))
    assert job.state == saga_job.CANCELED


def test_job_run_twice_rejected(testbed):
    env, registry, site = testbed
    service = Service("slurm://stampede", registry)
    job = service.create_job(Description())
    job.run()
    with pytest.raises(RuntimeError):
        job.run()


def test_job_wait_before_run_rejected(testbed):
    env, registry, site = testbed
    job = Service("slurm://stampede", registry).create_job(Description())
    with pytest.raises(RuntimeError):
        job.wait()


def test_failed_payload_maps_to_failed(testbed):
    env, registry, site = testbed
    service = Service("slurm://stampede", registry)

    def payload(env_, bj):
        yield env_.timeout(1)
        raise OSError("no java")

    job = service.create_job(Description(payload=payload))

    def driver():
        job.run()
        yield job.wait()

    env.run(env.process(driver()))
    assert job.state == saga_job.FAILED


# --------------------------------------------------------- filesystem
def test_catalog_create_read_delete(testbed):
    env, registry, site = testbed
    cat = site.scratch

    def io():
        yield cat.create("/data/points.csv", 10 * MB)
        assert cat.exists("/data/points.csv")
        assert cat.size("/data/points.csv") == 10 * MB
        yield cat.read("/data/points.csv")
        cat.delete("/data/points.csv")
        assert not cat.exists("/data/points.csv")

    env.run(env.process(io()))
    assert len(cat) == 0


def test_catalog_duplicate_create_rejected(testbed):
    env, registry, site = testbed

    def io():
        yield site.scratch.create("/x", 1.0)

    env.run(env.process(io()))
    with pytest.raises(FileExistsError):
        site.scratch.create("/x", 1.0)


def test_catalog_missing_file(testbed):
    env, registry, site = testbed
    with pytest.raises(FileNotFoundError):
        site.scratch.size("/nope")


def test_catalog_touch_and_list(testbed):
    env, registry, site = testbed
    cat = site.scratch
    cat.touch("/a/1", 5.0)
    cat.touch("/a/2", 5.0)
    cat.touch("/b/3", 5.0)
    assert list(cat.list("/a/")) == ["/a/1", "/a/2"]
    assert cat.volume.used == 15.0


def test_copy_file_same_site(testbed):
    env, registry, site = testbed
    cat = site.scratch
    cat.touch("/src.bin", 50 * MB)

    def driver():
        yield copy_file(env, cat, "/src.bin", cat, "/dst.bin")

    env.run(env.process(driver()))
    assert cat.exists("/dst.bin")
    assert cat.size("/dst.bin") == 50 * MB
    assert env.now > 0  # the copy took modeled time


def test_copy_file_cross_site_pays_wire_time():
    env = Environment()
    registry = Registry()
    a = registry.register(Site(env, stampede(num_nodes=1), rms_config=FAST))
    b = registry.register(Site(env, wrangler(num_nodes=1), rms_config=FAST,
                               hostname="wrangler"))
    a.scratch.touch("/big.tar", 100 * MB)

    def driver():
        yield copy_file(env, a.scratch, "/big.tar", b.scratch, "/big.tar",
                        wire_bw=10 * MB)

    env.run(env.process(driver()))
    assert b.scratch.exists("/big.tar")
    assert env.now >= 10.0  # >= 100MB / 10MB/s of wire time


def test_copy_overwrites_destination(testbed):
    env, registry, site = testbed
    cat = site.scratch
    cat.touch("/src", 10 * MB)
    cat.touch("/dst", 1 * MB)

    def driver():
        yield copy_file(env, cat, "/src", cat, "/dst")

    env.run(env.process(driver()))
    assert cat.size("/dst") == 10 * MB
