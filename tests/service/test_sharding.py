"""Workload determinism + shared-nothing sharding."""

import json

import pytest

from repro.core.description import DescriptionError
from repro.service import LoadSpec, run_load, run_sharded, shard_of

SPEC = LoadSpec(tenants=6, sessions_per_tenant=4, raptor_workers=4)


def test_spec_validation():
    for bad in (dict(tenants=0), dict(sessions_per_tenant=0),
                dict(tasks_per_session=0), dict(arrival_window=0),
                dict(shards=0), dict(shard=2, shards=2),
                dict(max_pending=0)):
        with pytest.raises(DescriptionError):
            LoadSpec(**bad).validate()


def test_shard_of_is_stable_and_total():
    with pytest.raises(ValueError, match="shards"):
        shard_of("t", 0)
    assert shard_of("tenant-000", 4) == shard_of("tenant-000", 4)
    names = [f"tenant-{i:03d}" for i in range(32)]
    assert {shard_of(n, 1) for n in names} == {0}
    assert all(0 <= shard_of(n, 4) < 4 for n in names)


def test_tenant_names_partition_exactly():
    """Every tenant lands on exactly one shard; the union is complete."""
    spec = LoadSpec(tenants=16)
    seen = []
    for i in range(3):
        seen.extend(spec.replace(shard=i, shards=3).tenant_names())
    assert sorted(seen) == spec.tenant_names()


def test_run_load_is_deterministic():
    assert run_load(SPEC) == run_load(SPEC)


def test_run_load_row_is_json_and_accounts_for_everything(tmp_path):
    row = run_load(SPEC)
    json.dumps(row)
    assert row["sessions_opened"] == 24
    assert row["sessions_closed"] == 24
    assert row["peak_concurrent_sessions"] == 24
    assert row["tickets_completed"] == row["tickets_submitted"]
    assert row["tickets_failed"] == 0
    assert row["submit_p50"] > 0
    assert row["completion_p99"] >= row["completion_p50"] > 0


def test_sharded_jobs1_matches_jobs2_byte_for_byte():
    """ISSUE acceptance: the sharded aggregate digest is identical for
    the sequential reference path and the process-pool fan-out."""
    sequential = run_sharded(SPEC, shards=2, jobs=1)
    parallel = run_sharded(SPEC, shards=2, jobs=2)
    assert sequential.aggregate_json() == parallel.aggregate_json()
    assert sequential.digest() == parallel.digest()


def test_sharded_totals_conserve_the_unsharded_workload():
    """Shared-nothing split: same tenants, same per-tenant arrivals, so
    the summed counts equal the unsharded run's."""
    whole = run_load(SPEC)
    sharded = run_sharded(SPEC, shards=3, jobs=1)
    totals = sharded.aggregate()["totals"]
    for key in ("tenants", "sessions_opened", "sessions_closed",
                "tickets_submitted", "tickets_completed"):
        assert totals[key] == whole[key], key
    assert len(sharded.rows) == 3
    assert [r["shard"] for r in sharded.rows] == [0, 1, 2]


def test_run_sharded_rejects_bad_args():
    with pytest.raises(ValueError, match="shards"):
        run_sharded(SPEC, shards=0)
    with pytest.raises(ValueError, match="jobs"):
        run_sharded(SPEC, shards=2, jobs=0)
