"""Admission control: quotas, bounded queues, explicit backpressure."""

import pytest

from repro.core.description import DescriptionError
from repro.service import RequestState, TenantAccount, TenantQuota, Ticket
from repro.service.admission import ADMITTED, REJECTED, THROTTLED
from repro.sim import Environment


def test_quota_validation():
    TenantQuota().validate()
    for bad in (dict(max_sessions=0), dict(max_pending=0),
                dict(max_in_flight=0), dict(weight=0),
                dict(throttle_watermark=0.0),
                dict(throttle_watermark=1.5)):
        with pytest.raises(DescriptionError):
            TenantQuota(**bad).validate()


def test_request_state_finality():
    assert RequestState.is_final(RequestState.DONE)
    assert RequestState.is_final(RequestState.REJECTED)
    assert not RequestState.is_final(RequestState.QUEUED)
    assert not RequestState.is_final(RequestState.SUBMITTED)


def test_session_quota_is_enforced():
    account = TenantAccount("t", TenantQuota(max_sessions=2))
    assert account.admit_session() and account.admit_session()
    assert not account.admit_session()
    assert account.sessions_opened == 2
    assert account.sessions_rejected == 1
    account.session_closed()
    assert account.admit_session()  # capacity freed by the close


def test_bounded_queue_rejects_then_recovers():
    account = TenantAccount("t", TenantQuota(max_pending=4,
                                             throttle_watermark=0.5))
    decisions = [account.admit() for _ in range(6)]
    # 2 plain admits, then over the 0.5 watermark, then queue-full
    assert decisions == [ADMITTED, ADMITTED, THROTTLED, THROTTLED,
                         REJECTED, REJECTED]
    assert account.pending == 4 and account.rejected == 2
    account.dispatched()
    assert account.pending == 3 and account.in_flight == 1
    # below max_pending again -> admitted (still above watermark)
    assert account.admit() == THROTTLED


def test_in_flight_cap_bounds_total_outstanding():
    account = TenantAccount("t", TenantQuota(
        max_pending=10, max_in_flight=2, throttle_watermark=1.0))
    for _ in range(2):
        account.admit()
        account.dispatched()
    assert account.in_flight == 2
    # pending + in_flight hits max_pending + max_in_flight only after
    # the queue itself fills; until then submissions queue up
    for _ in range(10):
        assert account.admit() != REJECTED
    assert account.admit() == REJECTED


def test_settled_accounting():
    account = TenantAccount("t", TenantQuota())
    account.admit()
    account.dispatched()
    account.settled(ok=True)
    account.admit()
    account.dispatched()
    account.settled(ok=False)
    assert account.completed == 1 and account.failed == 1
    assert account.in_flight == 0
    snap = account.snapshot()
    assert snap["completed"] == 1 and snap["failed"] == 1


def test_ticket_lifecycle_and_latencies():
    env = Environment()
    ticket = Ticket(env, "ticket.000001", "t", "t/1", "raptor", 3,
                    payload=[])
    assert ticket.state == RequestState.QUEUED
    assert not ticket.done
    assert ticket.submit_latency is None
    assert ticket.completion_latency is None
    env.run(until=2.0)
    ticket.submitted_at = env.now
    env.run(until=5.0)
    ticket._settle(env.now, RequestState.DONE)
    assert ticket.done
    assert ticket.submit_latency == pytest.approx(2.0)
    assert ticket.completion_latency == pytest.approx(5.0)
    snap = ticket.snapshot()
    assert snap["state"] == "Done" and snap["size"] == 3
    # the wait event fired with the ticket as its value
    assert ticket.wait().triggered
