"""PilotService: async submission, batching, lifecycle, query surface."""

import json

import pytest

from repro.api import RaptorConfig, TaskDescription
from repro.experiments.calibration import agent_config
from repro.experiments.harness import Testbed
from repro.service import (
    PilotService,
    RequestState,
    ServiceConfig,
    TenantQuota,
)


@pytest.fixture()
def served():
    """(env, testbed, service with pilot + overlay attached)."""
    testbed = Testbed("stampede", num_nodes=3, seed=7)
    service = PilotService(testbed.session, ServiceConfig(
        tick_interval=0.5, max_batch_per_tick=64))
    pilot, _, _ = testbed.start_pilot(
        nodes=2, agent_config=agent_config("fork"))
    service.add_pilots(pilot)
    overlay = testbed.session.raptor(
        pilot, workers=8, config=RaptorConfig(retain_results=False))
    testbed.env.run(overlay.ready())
    service.attach_overlay(overlay)
    yield testbed.env, testbed, service
    testbed.env.run(overlay.close(drain=True))


TASK = TaskDescription(cpu_seconds=1.0)


def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(tick_interval=0).validate()
    with pytest.raises(ValueError):
        ServiceConfig(max_batch_per_tick=0).validate()


def test_unknown_tenant_and_endpoint_raise(served):
    env, testbed, service = served
    with pytest.raises(KeyError, match="unknown tenant"):
        service.open_session("nobody")
    with pytest.raises(KeyError, match="unknown endpoint"):
        service.query("/bogus")
    with pytest.raises(KeyError, match="unknown tenant"):
        service.query("/tenants/nobody")
    with pytest.raises(KeyError, match="unknown session"):
        service.register_tenant("t")
        service.query("/tenants/t/sessions/99")


def test_submission_is_non_blocking_and_batched(served):
    """Tickets return at the submission instant; dispatch happens later
    at a phase-aligned tick, for all queued requests at once."""
    env, testbed, service = served
    service.register_tenant("t")
    sess = service.open_session("t")
    t0 = env.now
    tickets = [sess.submit_raptor([TASK]) for _ in range(5)]
    assert env.now == t0                      # no sim time consumed
    assert all(t.state == RequestState.QUEUED for t in tickets)
    env.run(env.any_of([t.wait() for t in tickets]))
    # every ticket was dispatched at the same drain tick, on the grid
    submits = {t.submitted_at for t in tickets}
    assert len(submits) == 1
    (submit_at,) = submits
    assert submit_at % 0.5 == pytest.approx(0.0, abs=1e-9)
    env.run(service.quiesced())
    assert all(t.state == RequestState.DONE for t in tickets)


def test_unit_tickets_settle(served):
    env, testbed, service = served
    service.register_tenant("t")
    sess = service.open_session("t")
    ticket = sess.submit_units({"executable": "/bin/date",
                                "cpu_seconds": 1.0})
    env.run(ticket.wait())
    assert ticket.state == RequestState.DONE
    assert ticket.completion_latency > 0


def test_session_lifecycle_and_drained(served):
    env, testbed, service = served
    service.register_tenant("t")
    sess = service.open_session("t")
    sess.submit_raptor([TASK])
    sess.close()
    assert sess.state == "Closing"            # work still in flight
    with pytest.raises(RuntimeError, match="Closing"):
        sess.submit_raptor([TASK])
    env.run(sess.drained())
    assert sess.state == "Closed"
    assert sess.closed_at is not None
    assert service.query("/sessions")["byState"] == {"Closed": 1}


def test_rejected_work_is_reported_never_dropped(served):
    env, testbed, service = served
    service.register_tenant("t", TenantQuota(max_pending=2,
                                             throttle_watermark=1.0))
    sess = service.open_session("t")
    tickets = [sess.submit_raptor([TASK]) for _ in range(4)]
    rejected = [t for t in tickets if t.state == RequestState.REJECTED]
    assert len(rejected) == 2
    assert all(t.done and t.detail for t in rejected)
    # the rejection is visible on every query surface
    assert service.query("/tenants/t")["rejected"] == 2
    assert service.query("/metrics")["tickets"]["rejected"] == 2
    by_state = service.query("/tenants/t/sessions/1")["ticketsByState"]
    assert by_state["Rejected"] == 2
    env.run(service.quiesced())
    assert [t.state for t in tickets if t not in rejected] == \
        [RequestState.DONE, RequestState.DONE]


def test_rejected_session_accepts_no_work(served):
    env, testbed, service = served
    service.register_tenant("t", TenantQuota(max_sessions=1))
    first = service.open_session("t")
    second = service.open_session("t")
    assert not first.rejected and second.rejected
    with pytest.raises(RuntimeError, match="Rejected"):
        second.submit_raptor([TASK])
    assert service.query("/sessions")["byState"]["Rejected"] == 1


def test_query_surface_shapes_and_canonical_json(served):
    env, testbed, service = served
    service.register_tenant("t")
    sess = service.open_session("t")
    sess.submit_raptor([TASK, TASK])
    env.run(service.quiesced())

    root = service.query("/")
    assert root["endpoints"] == list(service.ENDPOINTS)
    tenants = service.query("/tenants")["tenants"]
    assert [t["name"] for t in tenants] == ["t"]
    one = service.query("/tenants/t/sessions")
    assert [s["id"] for s in one["sessions"]] == ["t/1"]
    detail = service.query("/tenants/t/sessions/1")
    assert detail["ticketList"][0]["kind"] == "raptor"
    assert detail["ticketList"][0]["size"] == 2
    metrics = service.query("/metrics")
    assert metrics["submitLatency"]["count"] == 1
    assert metrics["tickets"]["outstanding"] == 0
    assert metrics["sessions"]["peakOpen"] == 1
    # canonical JSON: parse-identical to query(), stable key order
    text = service.query_json("/metrics")
    assert json.loads(text) == metrics
    assert text == json.dumps(metrics, sort_keys=True,
                              separators=(",", ":"))


def test_idle_service_adds_no_events():
    """The drain loop parks while idle instead of ticking forever: an
    idle service adds ~zero events over the world's own background
    (1000 tick intervals pass; a polling loop would add >= 1000)."""

    def idle_events(with_service):
        testbed = Testbed("stampede", num_nodes=3, seed=7)
        if with_service:
            service = PilotService(testbed.session,
                                   ServiceConfig(tick_interval=0.5))
            service.register_tenant("t")
        before = testbed.env._seq
        testbed.env.run(until=testbed.env.now + 500.0)
        return testbed.env._seq - before

    assert idle_events(True) - idle_events(False) < 10


def test_quiesced_fires_immediately_when_idle(served):
    env, testbed, service = served
    event = service.quiesced()
    assert event.triggered
