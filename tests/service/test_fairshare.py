"""Weighted deficit round-robin: shares, starvation-freedom."""

from collections import deque

import pytest

from repro.service import WeightedDeficitRoundRobin


def make_queues(**backlogs):
    return {tenant: deque(range(n)) for tenant, n in backlogs.items()}


def test_validation():
    with pytest.raises(ValueError, match="quantum"):
        WeightedDeficitRoundRobin(quantum=0)
    drr = WeightedDeficitRoundRobin()
    with pytest.raises(ValueError, match="weight"):
        drr.register("a", weight=0)


def test_register_is_idempotent_and_updates_weight():
    drr = WeightedDeficitRoundRobin()
    drr.register("a", weight=1.0)
    drr.register("a", weight=3.0)
    assert drr.tenants == ["a"]
    assert drr._weights["a"] == 3.0


def test_weighted_shares_converge_to_weights():
    drr = WeightedDeficitRoundRobin(quantum=1.0)
    drr.register("heavy", weight=3.0)
    drr.register("light", weight=1.0)
    queues = make_queues(heavy=400, light=400)
    got = {"heavy": 0, "light": 0}
    for _ in range(10):
        for tenant, _item in drr.drain(queues, budget=40):
            got[tenant] += 1
    assert got["heavy"] + got["light"] == 400
    # 3:1 weights -> ~300/100 split while both stay backlogged
    assert got["heavy"] == pytest.approx(300, abs=10)
    assert got["light"] == pytest.approx(100, abs=10)


def test_starvation_freedom_under_saturating_tenant():
    """A tenant with a huge backlog cannot shut out a light tenant:
    every drain pass with both backlogged serves the light tenant at
    least floor(quantum * weight) items."""
    drr = WeightedDeficitRoundRobin(quantum=2.0)
    drr.register("hog", weight=10.0)
    drr.register("small", weight=1.0)
    queues = make_queues(hog=100_000, small=50)
    served_small = 0
    rounds = 0
    while queues["small"] and rounds < 100:
        batch = drr.drain(queues, budget=64)
        per_tenant = {t: 0 for t in ("hog", "small")}
        for tenant, _item in batch:
            per_tenant[tenant] += 1
        if queues["small"]:
            # still backlogged -> must have been served this round
            assert per_tenant["small"] >= 1
        served_small += per_tenant["small"]
        rounds += 1
    assert served_small == 50
    assert rounds < 100  # the light tenant finished, i.e. no starvation


def test_work_conserving_when_one_queue_is_empty():
    drr = WeightedDeficitRoundRobin(quantum=1.0)
    drr.register("a", weight=1.0)
    drr.register("b", weight=1.0)
    queues = make_queues(a=10, b=0)
    batch = drr.drain(queues, budget=8)
    # b has nothing; the whole budget goes to a instead of idling
    assert len(batch) == 8
    assert all(tenant == "a" for tenant, _ in batch)


def test_idle_tenant_does_not_bank_credit():
    drr = WeightedDeficitRoundRobin(quantum=1.0)
    drr.register("a", weight=1.0)
    drr.register("b", weight=1.0)
    queues = make_queues(a=1000, b=0)
    for _ in range(10):
        drr.drain(queues, budget=10)
    assert queues["a"]  # a is still backlogged when b arrives
    # b arrives late; its deficit was reset while idle, so it gets its
    # fair share from now on, not a 10-round burst
    queues["b"] = deque(range(100))
    batch = drr.drain(queues, budget=10)
    served_b = sum(1 for tenant, _ in batch if tenant == "b")
    assert served_b <= 6


def test_empty_inputs():
    drr = WeightedDeficitRoundRobin()
    assert drr.drain({}, budget=10) == []
    drr.register("a")
    assert drr.drain(make_queues(a=5), budget=0) == []
    assert drr.drain(make_queues(a=0), budget=10) == []


def test_drain_is_deterministic():
    def run():
        drr = WeightedDeficitRoundRobin(quantum=1.5)
        drr.register("x", weight=2.0)
        drr.register("y", weight=1.0)
        queues = make_queues(x=37, y=23)
        out = []
        while queues["x"] or queues["y"]:
            out.extend(drr.drain(queues, budget=7))
        return out

    assert run() == run()
