"""The ``raptor`` sweep grid: speedup, equivalence, digest stability."""

from repro.experiments.raptor import (
    run_raptor_equivalence,
    run_raptor_faults,
    run_raptor_throughput,
)
from repro.experiments.sweeps import build_cells, run_cell, run_sweep


def _quick_cells(kinds=None):
    cells = build_cells("raptor", root_seed=42, quick=True)
    if kinds is None:
        return cells
    return [c for c in cells if c.kind in kinds]


def test_overlay_beats_per_unit_yarn_by_5x_at_1e5_tasks():
    """ISSUE acceptance: >= 5x over the per-unit YARN path at 1e5."""
    row = run_raptor_throughput(100_000)
    assert row.tasks_completed == 100_000 and row.tasks_failed == 0
    assert row.speedup >= 5.0, row
    # the comparison is apples-to-apples: same machine, same pilot size
    assert row.overlay_tasks_per_sec > row.per_unit_tasks_per_sec


def test_equivalence_both_paths_identical_results():
    row = run_raptor_equivalence(ntasks=64)
    assert row.identical, (row.overlay_digest, row.per_unit_digest)
    assert row.overlay_digest == row.per_unit_digest


def test_fault_cell_survives_worker_node_crash():
    row = run_raptor_faults(ntasks=100, seed=7)
    assert row.workers_lost > 0
    assert row.tasks_retried > 0
    assert row.all_completed and row.tasks_failed == 0
    assert row.tasks_completed == 100


def test_raptor_sweep_parallel_matches_sequential():
    """ISSUE acceptance: --jobs N digest byte-identical to --jobs 1."""
    cells = _quick_cells()
    sequential = run_sweep("raptor", root_seed=42, jobs=1, cells=cells)
    parallel = run_sweep("raptor", root_seed=42, jobs=2, cells=cells)
    assert parallel.aggregate_json() == sequential.aggregate_json()
    assert parallel.digest() == sequential.digest()


def test_raptor_cell_identical_with_sanitizer_armed(monkeypatch):
    """ISSUE acceptance: REPRO_SANITIZE=1 never changes the rows."""
    cell = _quick_cells(kinds=("throughput",))[0]
    plain = run_cell(cell)["rows"]
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    sanitized = run_cell(cell)["rows"]
    assert sanitized == plain


def test_quick_grid_covers_all_three_kinds():
    kinds = {c.kind for c in _quick_cells()}
    assert kinds == {"throughput", "equivalence", "faults"}
