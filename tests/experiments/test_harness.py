"""Tests for the experiment harness, calibration and table rendering.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug; plain asserts work fine.
"""

import pytest

from repro.experiments.calibration import (
    CALIBRATED_KMEANS_COST,
    CALIBRATED_YARN,
    SCENARIOS,
    TASK_CONFIGS,
    agent_config,
    scenario_label,
)
from repro.experiments.figure6 import (
    KMeansRow,
    run_figure6_cell,
    speedup,
    yarn_advantage,
)
from repro.experiments.harness import Testbed, experiment_machine
from repro.experiments.tables import format_table, within


# --------------------------------------------------------------- harness
def test_experiment_machine_applies_lustre_share():
    spec = experiment_machine("stampede", 2)
    assert spec.shared_fs.aggregate_bw == 30e6
    assert spec.num_nodes == 2
    wr = experiment_machine("wrangler", 1)
    assert wr.shared_fs.aggregate_bw > spec.shared_fs.aggregate_bw


def test_testbed_pilot_roundtrip():
    testbed = Testbed("stampede", num_nodes=1)
    pilot, t_submit, t_active = testbed.start_pilot(
        nodes=1, agent_config=agent_config("fork"))
    assert t_active > t_submit
    assert pilot.agent_info["cores"] == 16


def test_scenarios_match_paper():
    assert SCENARIOS == [(10_000, 5_000), (100_000, 500), (1_000_000, 50)]
    # compute = points x clusters is constant across scenarios (SSIV-B)
    products = {p * c for p, c in SCENARIOS}
    assert products == {50_000_000}
    assert TASK_CONFIGS == {8: 1, 16: 2, 32: 3}


def test_scenario_label():
    assert scenario_label(10_000, 5_000) == "10,000 points / 5,000 clusters"


def test_calibrated_cost_structure():
    cpu, inp, out, mem = CALIBRATED_KMEANS_COST.map_unit(1000, 50, 3)
    assert cpu > 0 and inp > 0 and out > 0 and mem > 0
    # compute scales with the point-cluster product
    cpu2, _, _, _ = CALIBRATED_KMEANS_COST.map_unit(2000, 50, 3)
    assert cpu2 == pytest.approx(2 * cpu)


def test_yarn_config_scaling():
    scaled = CALIBRATED_YARN.scaled(2.0)
    assert scaled.container_launch_seconds == pytest.approx(
        CALIBRATED_YARN.container_launch_seconds / 2)
    # protocol cadence is not CPU-bound
    assert scaled.nm_heartbeat == CALIBRATED_YARN.nm_heartbeat


# ---------------------------------------------------------------- figure6
def test_single_cell_runs_and_validates():
    row = run_figure6_cell("stampede", "RP", 10_000, 50, 8)
    assert row.centroids_ok
    assert row.runtime > 0
    assert row.nodes == 1


def _row(machine, flavor, points, ntasks, runtime):
    return KMeansRow(machine=machine, flavor=flavor, points=points,
                     clusters=50, ntasks=ntasks,
                     nodes=TASK_CONFIGS[ntasks], runtime=runtime,
                     lrm_setup=0.0, centroids_ok=True)


def test_speedup_computation():
    rows = [_row("stampede", "RP", 1000, 8, 800.0),
            _row("stampede", "RP", 1000, 32, 200.0)]
    assert speedup(rows, "stampede", "RP", 1000) == pytest.approx(4.0)


def test_yarn_advantage_computation():
    rows = [
        _row("stampede", "RP", 1000, 16, 100.0),
        _row("stampede", "RP-YARN", 1000, 16, 80.0),   # +20%
        _row("stampede", "RP", 1000, 32, 100.0),
        _row("stampede", "RP-YARN", 1000, 32, 90.0),   # +10%
        _row("stampede", "RP", 1000, 8, 100.0),        # excluded (<16)
        _row("stampede", "RP-YARN", 1000, 8, 500.0),
    ]
    assert yarn_advantage(rows) == pytest.approx(0.15)


def test_yarn_advantage_empty():
    assert yarn_advantage([]) == 0.0


# ----------------------------------------------------------------- tables
def test_format_table_alignment():
    table = format_table(["name", "value"],
                         [("alpha", 1.0), ("beta-long", 22.5)])
    lines = table.splitlines()
    assert len(lines) == 4
    assert "alpha" in lines[2]
    assert "22.5" in lines[3]


def test_within_band():
    assert within(5.0, (1.0, 10.0)) == "OK"
    assert "off" in within(50.0, (1.0, 10.0))
