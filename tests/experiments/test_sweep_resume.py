"""Crash-safe sweeps: interruption, resume, and digest equivalence.

The contract under test: a sweep killed at any point — between cells
(``max_cells``) or by a real ``SIGKILL`` mid-flight — and resumed from
its run directory re-runs only the unfinished cells and produces an
aggregate digest byte-identical to an uninterrupted ``--jobs 1`` run.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.sweeps import Sweep, run_sweep
from repro.persist import JournalError, SweepJournal

REPO_ROOT = Path(__file__).resolve().parents[2]

#: The grids the resume contract is proven on (all ``--quick``).
RESUME_GRIDS = ("figure5", "chaos", "service")


@pytest.fixture(scope="module")
def reference():
    """Uninterrupted jobs=1 digests, computed once per module."""
    cache = {}

    def get(grid):
        if grid not in cache:
            cache[grid] = run_sweep(grid, quick=True, jobs=1).digest()
        return cache[grid]

    return get


@pytest.mark.parametrize("jobs", (1, 2))
@pytest.mark.parametrize("grid", RESUME_GRIDS)
def test_interrupted_sweep_resumes_byte_identically(
        grid, jobs, tmp_path, reference):
    run_dir = tmp_path / "run"
    partial = run_sweep(grid, quick=True, jobs=jobs, run_dir=run_dir,
                        max_cells=2)
    assert partial.executed == 2
    assert not partial.complete

    resumed = Sweep.resume(run_dir, jobs=jobs)
    assert resumed.complete
    assert resumed.skipped == 2
    assert resumed.executed == len(resumed.results) - 2
    assert resumed.digest() == reference(grid)


def test_resuming_a_complete_sweep_is_a_noop(tmp_path, reference):
    run_dir = tmp_path / "run"
    run_sweep("chaos", quick=True, jobs=1, run_dir=run_dir)
    again = Sweep.resume(run_dir)
    assert again.complete
    assert again.executed == 0
    assert again.skipped == len(again.results)
    assert again.digest() == reference("chaos")


def test_parallelism_may_change_across_resume(tmp_path, reference):
    """A sweep killed under ``--jobs 2`` resumes under ``--jobs 1``
    (and vice versa) against the same journal — ``jobs`` is not part
    of the sweep identity."""
    run_dir = tmp_path / "run"
    run_sweep("chaos", quick=True, jobs=2, run_dir=run_dir, max_cells=3)
    resumed = Sweep.resume(run_dir, jobs=1)
    assert resumed.complete
    assert resumed.digest() == reference("chaos")


def test_rerun_without_resume_rejected(tmp_path):
    run_dir = tmp_path / "run"
    run_sweep("chaos", quick=True, jobs=1, run_dir=run_dir, max_cells=1)
    with pytest.raises(JournalError, match="--resume"):
        run_sweep("chaos", quick=True, jobs=1, run_dir=run_dir)


def test_changed_grid_parameters_rejected(tmp_path):
    run_dir = tmp_path / "run"
    run_sweep("chaos", quick=True, jobs=1, run_dir=run_dir, max_cells=1)
    with pytest.raises(JournalError, match="different sweep"):
        run_sweep("chaos", quick=False, jobs=1, run_dir=run_dir,
                  resume=True)
    with pytest.raises(JournalError, match="different sweep"):
        run_sweep("service", quick=True, jobs=1, run_dir=run_dir,
                  resume=True)


def test_resume_without_journal_rejected(tmp_path):
    with pytest.raises(JournalError, match="spec.json"):
        Sweep.resume(tmp_path / "empty")


def test_incremental_runs_accumulate(tmp_path, reference):
    """``--max-cells 1`` repeatedly: every invocation adds exactly one
    cell until the grid is complete."""
    run_dir = tmp_path / "run"
    total = len(Sweep("chaos", quick=True).cells())
    run_sweep("chaos", quick=True, jobs=1, run_dir=run_dir, max_cells=1)
    for done in range(1, total):
        run = run_sweep("chaos", quick=True, jobs=1, run_dir=run_dir,
                        resume=True, max_cells=1)
        assert run.executed == (1 if done < total else 0)
    final = Sweep.resume(run_dir)
    assert final.complete
    assert final.digest() == reference("chaos")


def test_sigkilled_sweep_resumes_byte_identically(tmp_path, reference):
    """The real thing: SIGKILL a journaling sweep subprocess mid-run,
    then resume in this process and match the uninterrupted digest."""
    run_dir = tmp_path / "run"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", "chaos", "--quick",
         "--jobs", "1", "--run-dir", str(run_dir)],
        cwd=REPO_ROOT, env=env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    cells = run_dir / "cells.jsonl"
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                break  # finished before we could kill it — still fine
            if cells.exists() and SweepJournal(run_dir).completed():
                break
            time.sleep(0.05)
        else:
            pytest.fail("sweep subprocess journaled nothing in 120s")
    finally:
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    journaled = SweepJournal(run_dir).completed()
    assert journaled, "journal empty despite the wait loop"
    resumed = Sweep.resume(run_dir)
    assert resumed.complete
    assert resumed.skipped == len(journaled)
    assert resumed.digest() == reference("chaos")
