"""Sweep runner: grids, seeding, and jobs=N vs jobs=1 determinism."""

import json

import pytest

from repro.experiments.sweeps import (
    SweepCell,
    build_cells,
    cell_seed,
    figure5_cells,
    figure6_cells,
    run_cell,
    run_sweep,
    sensitivity_cells,
)


# ------------------------------------------------------------ cell identity
def test_cell_seed_is_stable_and_hash_independent():
    # sha256-derived, so the same identity always maps to the same seed
    assert cell_seed(42, "figure5/pilot-startup(machine=stampede)") == \
        cell_seed(42, "figure5/pilot-startup(machine=stampede)")
    assert cell_seed(42, "a") != cell_seed(42, "b")
    assert cell_seed(42, "a") != cell_seed(43, "a")


def test_cell_seed_depends_on_identity_not_position():
    full = figure6_cells(42)
    quick = figure6_cells(42, quick=True)
    full_by_key = {c.key: c.seed for c in full}
    # every quick cell exists in the full grid with the same seed, even
    # though its list position differs
    for cell in quick:
        assert full_by_key[cell.key] == cell.seed


def test_grid_shapes():
    assert len(figure5_cells()) == 9
    assert len(figure6_cells()) == 36
    assert len(figure6_cells(quick=True)) == 16
    assert len(build_cells("ablations")) == 3
    assert len(sensitivity_cells()) == 8
    assert len(build_cells("chaos")) == 5
    assert len(build_cells("raptor")) == 5
    assert len(build_cells("raptor", quick=True)) == 4
    assert len(build_cells("service")) == 5
    assert len(build_cells("service", quick=True)) == 4
    with pytest.raises(ValueError, match="unknown sweep grid"):
        build_cells("figure99")


def test_grids_tuple_matches_builder_registry():
    """The CLI-facing GRIDS list and the builder registry never drift."""
    from repro.experiments.sweeps import _CELL_RUNNERS, _GRID_BUILDERS, GRIDS
    assert set(GRIDS) == set(_GRID_BUILDERS)
    assert set(GRIDS) == set(_CELL_RUNNERS)


#: One pinned (key, seed) pair per grid: seed derivation shifting —
#: a changed key format, a renamed parameter, a different hash — would
#: silently invalidate every committed sweep artifact.  Update these
#: values only on a deliberate, documented seed-scheme change.
PINNED_CELL_SEEDS = [
    ("figure5",
     "figure5/pilot-startup(flavor=RP,lrm=fork,machine=stampede,"
     "provision=False)", 3631325029),
    ("figure6",
     "figure6/kmeans(clusters=5000,flavor=RP,machine=stampede,"
     "ntasks=8,points=10000)", 2728879079),
    ("ablations", "ablations/integration-level()", 3683725900),
    ("sensitivity", "sensitivity/lustre-bw(bw_mb=10,flavor=RP)",
     1716248766),
    ("chaos", "chaos/bag(fault_rate=0.0,flavor=RP)", 3675950039),
    ("raptor", "raptor/throughput(machine=stampede,ntasks=10000)",
     755268484),
    ("service", "service/load(sessions_per_tenant=8,tenants=4)",
     11767156),
]


@pytest.mark.parametrize("grid,key,seed", PINNED_CELL_SEEDS,
                         ids=[g for g, _, _ in PINNED_CELL_SEEDS])
def test_cell_seed_regression(grid, key, seed):
    cells = {c.key: c for c in build_cells(grid, root_seed=42)}
    assert key in cells, sorted(cells)
    assert cells[key].seed == seed
    assert cell_seed(42, key) == seed


def test_build_cells_rejects_duplicate_keys(monkeypatch):
    from repro.experiments import sweeps

    def dup_builder(root_seed, quick=False):
        cell = sweeps._cell("ablations", "integration-level", root_seed)
        return [cell, cell]

    monkeypatch.setitem(sweeps._GRID_BUILDERS, "ablations", dup_builder)
    with pytest.raises(ValueError, match="duplicate sweep cell key"):
        build_cells("ablations")


def test_cells_are_picklable_and_keyed():
    import pickle
    cell = figure5_cells()[0]
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell and clone.key == cell.key
    assert cell.key.startswith("figure5/pilot-startup(")
    assert cell.param("machine") in ("stampede", "wrangler")


# ------------------------------------------------------------ determinism
def test_run_cell_is_hermetic():
    """The same cell run twice in one process gives identical rows."""
    cell = next(c for c in figure5_cells(42) if c.kind == "unit-startup")
    first = run_cell(cell)
    second = run_cell(cell)
    assert first["rows"] == second["rows"]
    assert first["seed"] == second["seed"] == cell.seed


def test_figure5_sweep_parallel_matches_sequential():
    """ISSUE acceptance: --jobs 4 row-for-row identical to --jobs 1."""
    sequential = run_sweep("figure5", root_seed=42, jobs=1)
    parallel = run_sweep("figure5", root_seed=42, jobs=4)
    assert [r["key"] for r in parallel.results] == \
        [r["key"] for r in sequential.results]
    for seq_row, par_row in zip(sequential.results, parallel.results, strict=True):
        assert par_row["rows"] == seq_row["rows"], seq_row["key"]
    assert parallel.aggregate_json() == sequential.aggregate_json()
    assert parallel.digest() == sequential.digest()


def test_sweep_report_separates_rows_from_timing():
    run = run_sweep("ablations", root_seed=42, jobs=1)
    report = run.report()
    assert report["digest"] == run.digest()
    assert set(report["cell_timings"]) == {r["key"] for r in run.results}
    # the digest covers only the deterministic aggregate, never timings
    assert "cell_timings" not in run.aggregate()
    assert "wall_seconds" not in run.aggregate()
    json.dumps(report)  # the artifact must be JSON-serializable


def test_sweep_rejects_bad_jobs():
    with pytest.raises(ValueError, match="jobs"):
        run_sweep("ablations", jobs=0)


def test_explicit_cell_subset_runs_only_those_cells():
    cells = [c for c in figure5_cells(42) if c.kind == "unit-startup"][:1]
    run = run_sweep("figure5", root_seed=42, jobs=1, cells=cells)
    assert len(run.results) == 1
    assert run.results[0]["key"] == cells[0].key


def test_rows_are_plain_json_values():
    cell = SweepCell(grid="sensitivity", kind="lustre-bw",
                     params=(("bw_mb", 100), ("flavor", "RP")),
                     seed=7)
    rows = run_cell(cell)["rows"]
    assert rows and isinstance(rows[0]["runtime"], float)
    json.dumps(rows)
