"""Unit tests for Resource / Level / Store primitives."""

import pytest

from repro.sim import Environment, Level, Resource, SimulationError, Store


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def user(name, hold):
        with res.request() as req:
            yield req
            order.append((env.now, name, "got"))
            yield env.timeout(hold)
        order.append((env.now, name, "rel"))

    env.process(user("a", 5.0))
    env.process(user("b", 5.0))
    env.process(user("c", 1.0))
    env.run()
    # c waits until a releases at t=5
    assert (0.0, "a", "got") in order
    assert (0.0, "b", "got") in order
    assert (5.0, "c", "got") in order


def test_resource_fifo_ordering():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def user(name):
        with res.request() as req:
            yield req
            grants.append(name)
            yield env.timeout(1.0)

    for name in "abcd":
        env.process(user(name))
    env.run()
    assert grants == list("abcd")


def test_resource_count_and_queue():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(10.0)

    def prober(out):
        yield env.timeout(1.0)
        out["count"] = res.count
        res.request()  # queues forever
        yield env.timeout(1.0)
        out["queue"] = res.queue_length

    out = {}
    env.process(holder())
    env.process(prober(out))
    env.run(until=5.0)
    assert out == {"count": 1, "queue": 1}


def test_resource_zero_capacity_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        Resource(env, capacity=0)


def test_resource_release_unqueued_request_is_noop():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    res.release(req)
    res.release(req)  # double release must not corrupt state
    assert res.count == 0


# ------------------------------------------------------------------- Level
def test_level_get_blocks_until_put():
    env = Environment()
    lvl = Level(env, capacity=100.0, init=0.0)
    trace = []

    def consumer():
        yield lvl.get(10.0)
        trace.append(env.now)

    def producer():
        yield env.timeout(4.0)
        yield lvl.put(10.0)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert trace == [4.0]
    assert lvl.level == 0.0


def test_level_put_blocks_at_capacity():
    env = Environment()
    lvl = Level(env, capacity=10.0, init=10.0)
    trace = []

    def producer():
        yield lvl.put(5.0)
        trace.append(env.now)

    def consumer():
        yield env.timeout(3.0)
        yield lvl.get(5.0)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert trace == [3.0]
    assert lvl.level == 10.0


def test_level_fifo_no_overtaking():
    env = Environment()
    lvl = Level(env, capacity=100.0, init=5.0)
    grants = []

    def getter(name, amount):
        yield lvl.get(amount)
        grants.append(name)

    def feeder():
        yield env.timeout(1.0)
        yield lvl.put(20.0)

    env.process(getter("big", 20.0))   # cannot be served from init=5
    env.process(getter("small", 1.0))  # must wait behind big (FIFO)
    env.process(feeder())
    env.run()
    assert grants == ["big", "small"]


def test_level_invalid_amounts_rejected():
    env = Environment()
    lvl = Level(env, capacity=10.0)
    with pytest.raises(SimulationError):
        lvl.get(0)
    with pytest.raises(SimulationError):
        lvl.put(-1)


def test_level_init_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        Level(env, capacity=5.0, init=6.0)


# ------------------------------------------------------------------- Store
def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in (1, 2, 3):
            yield store.put(item)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [1, 2, 3]


def test_store_get_blocks_on_empty():
    env = Environment()
    store = Store(env)
    trace = []

    def consumer():
        item = yield store.get()
        trace.append((env.now, item))

    def producer():
        yield env.timeout(6.0)
        yield store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert trace == [(6.0, "late")]


def test_store_put_blocks_on_full():
    env = Environment()
    store = Store(env, capacity=1)
    trace = []

    def producer():
        yield store.put("a")
        yield store.put("b")
        trace.append(env.now)

    def consumer():
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert trace == [5.0]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for item in ("apple", "banana", "avocado"):
            yield store.put(item)

    def consumer():
        item = yield store.get(lambda s: s.startswith("b"))
        got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == ["banana"]
    assert list(store.items) == ["apple", "avocado"]


def test_store_filter_getter_does_not_block_plain_getter():
    env = Environment()
    store = Store(env)
    got = []

    def filter_consumer():
        item = yield store.get(lambda s: s == "never")
        got.append(("filter", item))

    def plain_consumer():
        item = yield store.get()
        got.append(("plain", item))

    def producer():
        yield env.timeout(1.0)
        yield store.put("x")

    env.process(filter_consumer())
    env.process(plain_consumer())
    env.process(producer())
    env.run(until=10.0)
    assert got == [("plain", "x")]


def test_store_none_item_roundtrip():
    env = Environment()
    store = Store(env)
    got = []

    def roundtrip():
        yield store.put(None)
        item = yield store.get()
        got.append(item)

    env.process(roundtrip())
    env.run()
    assert got == [None]


def test_store_len():
    env = Environment()
    store = Store(env)

    def producer():
        yield store.put(1)
        yield store.put(2)

    env.process(producer())
    env.run()
    assert len(store) == 2
