"""Property-based tests of kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Level, Resource, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False), min_size=1, max_size=30))
@settings(max_examples=60)
def test_clock_is_monotone_nondecreasing(delays):
    """However events are scheduled, observed times never go backwards."""
    env = Environment()
    observed = []

    def proc(delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for d in delays:
        env.process(proc(d))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=60)
def test_all_of_fires_at_max_delay(delays):
    env = Environment()

    def proc():
        yield env.all_of([env.timeout(d) for d in delays])
        return env.now

    assert env.run(env.process(proc())) == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=60)
def test_any_of_fires_at_min_delay(delays):
    env = Environment()

    def proc():
        yield env.any_of([env.timeout(d) for d in delays])
        return env.now

    assert env.run(env.process(proc())) == min(delays)


@given(capacity=st.integers(min_value=1, max_value=8),
       n_users=st.integers(min_value=1, max_value=25),
       hold=st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
@settings(max_examples=40)
def test_resource_never_over_allocated(capacity, n_users, hold):
    env = Environment()
    res = Resource(env, capacity=capacity)
    max_seen = 0

    def user():
        nonlocal max_seen
        with res.request() as req:
            yield req
            max_seen = max(max_seen, res.count)
            yield env.timeout(hold)

    done = [env.process(user()) for _ in range(n_users)]
    env.run(env.all_of(done))
    assert max_seen <= capacity


@given(amounts=st.lists(st.floats(min_value=0.1, max_value=10.0,
                                  allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=40)
def test_level_conserves_quantity(amounts):
    """Everything put in can be taken back out; level never negative."""
    env = Environment()
    total = sum(amounts)
    lvl = Level(env, capacity=total + 1.0, init=0.0)

    def producer():
        for a in amounts:
            yield lvl.put(a)
            assert 0.0 <= lvl.level <= lvl.capacity

    def consumer():
        for a in amounts:
            yield lvl.get(a)
            assert lvl.level >= -1e-9

    p = env.process(producer())
    c = env.process(consumer())
    env.run(env.all_of([p, c]))
    assert abs(lvl.level) < 1e-9


@given(items=st.lists(st.integers(), min_size=0, max_size=30))
@settings(max_examples=40)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            received.append((yield store.get()))

    p = env.process(producer())
    c = env.process(consumer())
    env.run(env.all_of([p, c]))
    assert received == items
