"""Slot-based sleeps: ``yield <number>`` as the allocation-free sleep.

The kernel accepts a bare float/int yield as a sleep of that many
simulated seconds, scheduled as a lightweight heap slot instead of a
Timeout event.  These tests pin the contract: identical timing and
ordering to ``yield env.timeout(delay)``, interruptability, error
behaviour, and sanitizer compatibility.
"""

import pytest

from repro.analysis.sanitizer import InvariantViolation, SimSanitizer
from repro.sim.engine import Environment, Interrupt, SimulationError


def test_number_yield_sleeps_exactly_like_timeout():
    def with_timeout(env, log, tag):
        for i in range(4):
            yield env.timeout(0.75)
            log.append((env.now, tag, i))

    def with_number(env, log, tag):
        for i in range(4):
            yield 0.75
            log.append((env.now, tag, i))

    env_a, log_a = Environment(), []
    env_a.process(with_timeout(env_a, log_a, "x"))
    env_a.process(with_timeout(env_a, log_a, "y"))
    env_a.run()

    env_b, log_b = Environment(), []
    env_b.process(with_number(env_b, log_b, "x"))
    env_b.process(with_number(env_b, log_b, "y"))
    env_b.run()

    assert log_a == log_b


def test_mixed_timeout_and_number_interleaving_is_deterministic():
    log = []

    def mixed(env, tag):
        yield 1.0
        log.append((env.now, tag, "slot"))
        yield env.timeout(1.0)
        log.append((env.now, tag, "timeout"))
        yield 0
        log.append((env.now, tag, "zero"))

    env = Environment()
    env.process(mixed(env, "a"))
    env.process(mixed(env, "b"))
    env.run()
    assert log == [
        (1.0, "a", "slot"), (1.0, "b", "slot"),
        (2.0, "a", "timeout"), (2.0, "b", "timeout"),
        (2.0, "a", "zero"), (2.0, "b", "zero"),
    ]


def test_int_yield_sleeps():
    env = Environment()

    def prog():
        yield 3
        return env.now

    proc = env.process(prog())
    assert env.run(proc) == 3.0


def test_interrupt_during_slot_sleep_detaches_the_slot():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield 100.0
        except Interrupt as intr:
            log.append(("interrupted", env.now, intr.cause))
        yield 1.0
        log.append(("woke", env.now))

    proc = env.process(sleeper())

    def killer():
        yield 2.0
        proc.interrupt("node died")

    env.process(killer())
    env.run()
    # The stale slot (due at t=100) must not resume the process again.
    assert log == [("interrupted", 2.0, "node died"), ("woke", 3.0)]


def test_negative_number_yield_crashes_the_simulation():
    env = Environment()

    def bad():
        yield -0.5

    env.process(bad())
    with pytest.raises(SimulationError, match="negative delay"):
        env.run()


def test_non_numeric_non_event_yield_still_crashes():
    env = Environment()

    def bad():
        yield "soon"

    env.process(bad())
    with pytest.raises(SimulationError, match="expected an Event"):
        env.run()


def test_bool_yield_is_rejected():
    # bools are ints in Python, but a `yield True` is always a bug.
    env = Environment()

    def bad():
        yield True

    env.process(bad())
    with pytest.raises(SimulationError, match="expected an Event"):
        env.run()


def test_sanitizer_clock_check_covers_slot_sleeps():
    env = Environment()
    SimSanitizer.install(env)

    def bad():
        yield float("inf")

    env.process(bad())
    with pytest.raises(InvariantViolation, match="clock"):
        env.run()


def test_slot_sleep_inside_nested_process_chain():
    env = Environment()

    def inner():
        yield 2.0
        return "inner-done"

    def outer():
        result = yield env.process(inner())
        yield 1.0
        return (result, env.now)

    proc = env.process(outer())
    assert env.run(proc) == ("inner-done", 3.0)
