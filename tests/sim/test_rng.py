"""Tests for seeded named RNG streams."""

from repro.sim import SeedSequenceRegistry


def test_same_name_same_stream_object():
    reg = SeedSequenceRegistry(root_seed=7)
    assert reg.stream("a") is reg.stream("a")


def test_same_seed_reproducible_across_registries():
    a = SeedSequenceRegistry(root_seed=7).stream("jitter")
    b = SeedSequenceRegistry(root_seed=7).stream("jitter")
    assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]


def test_different_names_independent():
    reg = SeedSequenceRegistry(root_seed=7)
    xs = [reg.stream("x").uniform() for _ in range(5)]
    ys = [reg.stream("y").uniform() for _ in range(5)]
    assert xs != ys


def test_different_roots_differ():
    a = SeedSequenceRegistry(root_seed=1).stream("s")
    b = SeedSequenceRegistry(root_seed=2).stream("s")
    assert a.uniform() != b.uniform()


def test_lognormal_around_positive_and_centered():
    stream = SeedSequenceRegistry(0).stream("jit")
    draws = [stream.lognormal_around(100.0, 0.05) for _ in range(200)]
    assert all(d > 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 90.0 < mean < 110.0


def test_lognormal_around_zero_center():
    stream = SeedSequenceRegistry(0).stream("z")
    assert stream.lognormal_around(0.0) == 0.0


def test_choice_and_integers_in_range():
    stream = SeedSequenceRegistry(3).stream("c")
    seq = ["a", "b", "c"]
    for _ in range(20):
        assert stream.choice(seq) in seq
        assert 0 <= stream.integers(0, 10) < 10


def test_shuffle_is_permutation():
    stream = SeedSequenceRegistry(3).stream("sh")
    items = list(range(20))
    shuffled = items[:]
    stream.shuffle(shuffled)
    assert sorted(shuffled) == items
