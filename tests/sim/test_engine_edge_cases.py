"""Edge-case tests for the DES kernel (paths missed by the main suite)."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Resource,
    SimulationError,
)


def test_all_of_fails_if_any_constituent_fails():
    env = Environment()
    bad = env.event()
    slow = env.timeout(10.0)

    def proc():
        with pytest.raises(ValueError, match="boom"):
            yield env.all_of([bad, slow])
        return "caught"

    def failer():
        yield env.timeout(1.0)
        bad.fail(ValueError("boom"))

    p = env.process(proc())
    env.process(failer())
    assert env.run(p) == "caught"


def test_any_of_fails_fast_on_failure():
    env = Environment()
    bad = env.event()

    def proc():
        with pytest.raises(RuntimeError):
            yield env.any_of([bad, env.timeout(100.0)])
        return env.now

    def failer():
        yield env.timeout(2.0)
        bad.fail(RuntimeError("x"))

    p = env.process(proc())
    env.process(failer())
    assert env.run(p) == 2.0


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    done = env.timeout(1.0, value="early")
    env.run()  # processes the timeout

    def proc():
        value = yield done  # already processed
        return (env.now, value)

    assert env.run(env.process(proc())) == (1.0, "early")


def test_interrupt_while_waiting_on_resource_cancels_request():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(50.0)

    def waiter():
        req = res.request()
        try:
            yield req
            got.append("granted")
        except Interrupt:
            req.cancel()
            got.append("interrupted")

    def interrupter(target):
        yield env.timeout(5.0)
        target.interrupt()

    env.process(holder())
    target = env.process(waiter())
    env.process(interrupter(target))
    env.run()
    assert got == ["interrupted"]
    # the canceled request never steals the slot later
    assert res.queue_length == 0


def test_condition_events_must_share_environment():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(SimulationError, match="environments"):
        env_a.all_of([env_a.timeout(1), env_b.timeout(1)])


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError, match="exception"):
        env.event().fail("not an exception")


def test_run_until_event_from_empty_queue_raises():
    env = Environment()
    pending = env.event()  # never triggered, nothing scheduled
    with pytest.raises(SimulationError, match="never fired"):
        env.run(until=pending)


def test_step_with_no_events_raises():
    env = Environment()
    with pytest.raises(SimulationError, match="no scheduled"):
        env.step()


def test_run_to_horizon_advances_clock_past_last_event():
    env = Environment()
    env.timeout(3.0)
    env.run(until=10.0)
    assert env.now == 10.0
