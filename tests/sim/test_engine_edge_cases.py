"""Edge-case tests for the DES kernel (paths missed by the main suite)."""

import pytest

from repro.sim import (
    AllOf,
    Environment,
    Event,
    Interrupt,
    Resource,
    SimulationError,
)


def test_all_of_fails_if_any_constituent_fails():
    env = Environment()
    bad = env.event()
    slow = env.timeout(10.0)

    def proc():
        with pytest.raises(ValueError, match="boom"):
            yield env.all_of([bad, slow])
        return "caught"

    def failer():
        yield env.timeout(1.0)
        bad.fail(ValueError("boom"))

    p = env.process(proc())
    env.process(failer())
    assert env.run(p) == "caught"


def test_any_of_fails_fast_on_failure():
    env = Environment()
    bad = env.event()

    def proc():
        with pytest.raises(RuntimeError):
            yield env.any_of([bad, env.timeout(100.0)])
        return env.now

    def failer():
        yield env.timeout(2.0)
        bad.fail(RuntimeError("x"))

    p = env.process(proc())
    env.process(failer())
    assert env.run(p) == 2.0


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    done = env.timeout(1.0, value="early")
    env.run()  # processes the timeout

    def proc():
        value = yield done  # already processed
        return (env.now, value)

    assert env.run(env.process(proc())) == (1.0, "early")


def test_interrupt_while_waiting_on_resource_cancels_request():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder():
        with res.request() as req:
            yield req
            yield env.timeout(50.0)

    def waiter():
        req = res.request()
        try:
            yield req
            got.append("granted")
        except Interrupt:
            req.cancel()
            got.append("interrupted")

    def interrupter(target):
        yield env.timeout(5.0)
        target.interrupt()

    env.process(holder())
    target = env.process(waiter())
    env.process(interrupter(target))
    env.run()
    assert got == ["interrupted"]
    # the canceled request never steals the slot later
    assert res.queue_length == 0


def test_condition_events_must_share_environment():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(SimulationError, match="environments"):
        env_a.all_of([env_a.timeout(1), env_b.timeout(1)])


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError, match="exception"):
        env.event().fail("not an exception")


def test_run_until_event_from_empty_queue_raises():
    env = Environment()
    pending = env.event()  # never triggered, nothing scheduled
    with pytest.raises(SimulationError, match="never fired"):
        env.run(until=pending)


def test_step_with_no_events_raises():
    env = Environment()
    with pytest.raises(SimulationError, match="no scheduled"):
        env.step()


def test_run_to_horizon_advances_clock_past_last_event():
    env = Environment()
    env.timeout(3.0)
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_to_horizon_with_empty_queue_still_advances_clock():
    env = Environment()
    env.run(until=7.5)
    assert env.now == 7.5
    # and again, from a non-zero clock
    env.run(until=9.0)
    assert env.now == 9.0


def test_interrupt_when_target_fires_at_same_timestamp():
    # The interrupt is delivered at the same simulated time the
    # process's awaited event fires.  The urgent-priority interrupt
    # wins, the process detaches from its target, and the orphaned
    # event firing afterwards must not resume the process a second
    # time.
    env = Environment()
    log = []
    holder = {}

    def attacker():
        yield env.timeout(5.0)
        holder["victim"].interrupt(cause="same-instant")

    def victim():
        try:
            yield env.timeout(5.0, value="fired")
            log.append("fired")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, env.now))
            value = yield env.timeout(1.0, value="resumed")
            log.append(value)
        return "done"

    # attacker first, so its t=5 timeout fires before the victim's
    env.process(attacker())
    holder["victim"] = proc = env.process(victim())
    assert env.run(proc) == "done"
    assert log == [("interrupted", "same-instant", 5.0), "resumed"]
    assert env.now == 6.0


def test_conditions_over_already_processed_events():
    env = Environment()
    a = env.timeout(1.0, value="a")
    b = env.timeout(2.0, value="b")
    env.run()
    assert a.processed and b.processed

    any_c = env.any_of([a, b])
    all_c = env.all_of([a, b])
    assert env.run(all_c) == {a: "a", b: "b"}
    assert env.run(any_c) == {a: "a", b: "b"}


def test_conditions_over_already_failed_event():
    env = Environment()
    bad = env.event()
    bad.fail(ValueError("stale failure"))
    env.run()

    with pytest.raises(ValueError, match="stale failure"):
        env.run(env.all_of([bad, env.timeout(1.0)]))
    with pytest.raises(ValueError, match="stale failure"):
        env.run(env.any_of([bad, env.timeout(1.0)]))
