"""Unit tests for the DES event loop and process machinery."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    result = env.run(p)
    assert result == 5.0
    assert env.now == 5.0


def test_timeout_value_passthrough():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="payload")
        return got

    assert env.run(env.process(proc())) == "payload"


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_sequential_timeouts_accumulate():
    env = Environment()
    trace = []

    def proc():
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            trace.append(env.now)

    env.run(env.process(proc()))
    assert trace == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    trace = []

    def worker(name, delay):
        yield env.timeout(delay)
        trace.append((env.now, name))
        yield env.timeout(delay)
        trace.append((env.now, name))

    env.process(worker("a", 2.0))
    env.process(worker("b", 3.0))
    env.run()
    assert trace == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b")]


def test_simultaneous_events_fire_in_creation_order():
    env = Environment()
    trace = []

    def worker(name):
        yield env.timeout(1.0)
        trace.append(name)

    for name in ("first", "second", "third"):
        env.process(worker(name))
    env.run()
    assert trace == ["first", "second", "third"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10.0)

    env.process(proc())
    env.run(until=25.0)
    assert env.now == 25.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=50.0)
    with pytest.raises(SimulationError):
        env.run(until=10.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    trace = []

    def waiter():
        value = yield gate
        trace.append((env.now, value))

    def opener():
        yield env.timeout(7.0)
        gate.succeed("open")

    env.process(waiter())
    env.process(opener())
    env.run()
    assert trace == [(7.0, "open")]


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter():
        with pytest.raises(ValueError, match="boom"):
            yield gate
        return "handled"

    def failer():
        yield env.timeout(1.0)
        gate.fail(ValueError("boom"))

    p = env.process(waiter())
    env.process(failer())
    assert env.run(p) == "handled"


def test_process_return_value():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 99

    def parent():
        value = yield env.process(child())
        return value + 1

    assert env.run(env.process(parent())) == 100


def test_process_exception_propagates_to_parent():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise RuntimeError("child died")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            return str(exc)

    assert env.run(env.process(parent())) == "child died"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise RuntimeError("unobserved")

    env.process(proc())
    with pytest.raises(RuntimeError, match="unobserved"):
        env.run()


def test_yield_non_event_is_an_error():
    # Numbers are slot-based sleeps (see test_slot_sleeps); anything
    # else that is not an Event crashes the simulation loudly.
    env = Environment()

    def proc():
        yield object()

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_interrupt_wakes_blocked_process():
    env = Environment()
    trace = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as intr:
            trace.append((env.now, intr.cause))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt(cause="wake up")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert trace == [(3.0, "wake up")]


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_interrupted_process_can_continue():
    env = Environment()

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(5.0)
        return env.now

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    assert env.run(target) == 7.0


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        fast = env.timeout(1.0, value="fast")
        slow = env.timeout(10.0, value="slow")
        results = yield env.any_of([fast, slow])
        return (env.now, list(results.values()))

    when, values = env.run(env.process(proc()))
    assert when == 1.0
    assert values == ["fast"]


def test_all_of_waits_for_all():
    env = Environment()

    def proc():
        events = [env.timeout(t, value=t) for t in (1.0, 5.0, 3.0)]
        results = yield env.all_of(events)
        return (env.now, sorted(results.values()))

    when, values = env.run(env.process(proc()))
    assert when == 5.0
    assert values == [1.0, 3.0, 5.0]


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    assert env.run(env.process(proc())) == 0.0


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc():
        yield env.timeout(5.0)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(4.0)
    assert env.peek() == 4.0


def test_peek_empty_queue_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_run_until_event_already_processed_returns_value():
    env = Environment()
    ev = env.timeout(1.0, value="x")
    env.run()
    assert env.run(until=ev) == "x"
