"""Property-based tests for pilot/unit state machines and the DB."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.db import Database
from repro.core.states import (
    PILOT_TRANSITIONS,
    UNIT_TRANSITIONS,
    PilotState,
    UnitState,
    check_transition,
)
from repro.sim import Environment


# ------------------------------------------------------------ state walks
def random_walk(table, start, draws):
    """Follow random legal transitions; returns the path."""
    path = [start]
    state = start
    for draw in draws:
        options = sorted(table.get(state, set()), key=lambda s: s.value)
        if not options:
            break
        state = options[draw % len(options)]
        path.append(state)
    return path


@given(draws=st.lists(st.integers(min_value=0, max_value=10),
                      min_size=0, max_size=12))
@settings(max_examples=100)
def test_pilot_walks_end_in_final_or_continue(draws):
    """Any legal walk never raises and only stops at final states."""
    path = random_walk(PILOT_TRANSITIONS, PilotState.NEW, draws)
    for current, nxt in zip(path, path[1:], strict=False):
        check_transition(PILOT_TRANSITIONS, current, nxt)  # must not raise
    if len(path) <= len(draws):  # walk stopped early -> dead end
        assert path[-1].is_final


@given(draws=st.lists(st.integers(min_value=0, max_value=10),
                      min_size=0, max_size=12))
@settings(max_examples=100)
def test_unit_walks_end_in_final_or_continue(draws):
    path = random_walk(UNIT_TRANSITIONS, UnitState.NEW, draws)
    for current, nxt in zip(path, path[1:], strict=False):
        check_transition(UNIT_TRANSITIONS, current, nxt)
    if len(path) <= len(draws):
        assert path[-1].is_final


@given(state=st.sampled_from(list(PilotState)))
def test_no_transition_out_of_final_pilot_states(state):
    if state.is_final:
        assert state not in PILOT_TRANSITIONS
        for target in PilotState:
            with pytest.raises(ValueError):
                check_transition(PILOT_TRANSITIONS, state, target)


@given(state=st.sampled_from(list(UnitState)))
def test_failed_canceled_reachable_from_all_nonfinal_unit_states(state):
    if not state.is_final and state in UNIT_TRANSITIONS:
        assert UnitState.FAILED in UNIT_TRANSITIONS[state]
        assert UnitState.CANCELED in UNIT_TRANSITIONS[state]


def test_done_only_reachable_through_full_pipeline():
    """DONE must come via AGENT_STAGING_OUTPUT, not skipped."""
    for state, targets in UNIT_TRANSITIONS.items():
        if UnitState.DONE in targets:
            assert state is UnitState.AGENT_STAGING_OUTPUT


# -------------------------------------------------------------- database
@given(docs=st.lists(st.dictionaries(
    keys=st.sampled_from(["a", "b", "c"]),
    values=st.integers(0, 5), max_size=3), min_size=0, max_size=20))
@settings(max_examples=50)
def test_db_find_matches_python_filter(docs):
    env = Environment()
    col = Database(env).collection("things")
    for doc in docs:
        col.insert(doc)
    query = {"a": 1}
    expected = [d for d in docs if d.get("a") == 1]
    found = col.find(query)
    assert len(found) == len(expected)
    assert all(f.get("a") == 1 for f in found)


@given(n=st.integers(min_value=1, max_value=30))
@settings(max_examples=20)
def test_db_ids_unique_and_stable(n):
    env = Environment()
    col = Database(env).collection("c")
    ids = [col.insert({"i": i}) for i in range(n)]
    assert len(set(ids)) == n
    for i, _id in enumerate(ids):
        assert col.find_one({"_id": _id})["i"] == i


def test_db_update_and_watch():
    env = Environment()
    db = Database(env)
    col = db.collection("units")
    uid = col.insert({"state": "New"})
    fired = []

    def watcher():
        yield col.watch()
        fired.append(env.now)

    env.process(watcher())

    def mutator():
        yield env.timeout(5.0)
        assert col.update_one({"_id": uid}, {"state": "Done"})

    env.process(mutator())
    env.run()
    assert fired == [5.0]
    assert col.find_one({"_id": uid})["state"] == "Done"


def test_db_update_missing_returns_false():
    env = Environment()
    col = Database(env).collection("c")
    assert not col.update_one({"_id": "nope"}, {"x": 1})


def test_db_roundtrip_costs_time():
    env = Environment()
    db = Database(env, rtt=0.05)

    def client():
        yield db.roundtrip()
        return env.now

    assert env.run(env.process(client())) == pytest.approx(0.05)
