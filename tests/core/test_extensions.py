"""Tests for the future-work extensions (§V): in-memory tier, Docker.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug; plain asserts work fine.
"""

import numpy as np
import pytest

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import run_kmeans_pilot
from repro.api import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotState,
    UnitState,
)
from tests.core.test_units import fast_agent


def active_pilot(stack, lrm="fork", nodes=1):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=nodes, runtime=600,
        agent_config=fast_agent(lrm=lrm)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    return pilot


def exec_span(unit):
    return (unit.timestamp(UnitState.AGENT_STAGING_OUTPUT)
            - unit.timestamp(UnitState.EXECUTING))


# ----------------------------------------------------------- memory tier
def test_memory_tier_faster_than_lustre(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(stack)
    disk, mem = umgr.submit_units([
        ComputeUnitDescription(cores=1, input_bytes=500e6,
                               input_tier="default"),
        ComputeUnitDescription(cores=1, input_bytes=500e6,
                               input_tier="memory")])
    env.run(umgr.wait_units([disk, mem]))
    assert exec_span(mem) < exec_span(disk)


def test_memory_tier_on_yarn_backend(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(stack, lrm="yarn")
    disk, mem = umgr.submit_units([
        ComputeUnitDescription(cores=1, input_bytes=2e9,
                               input_tier="default"),
        ComputeUnitDescription(cores=1, input_bytes=2e9,
                               input_tier="memory")])
    env.run(umgr.wait_units([disk, mem]))
    assert disk.state is UnitState.DONE and mem.state is UnitState.DONE
    assert exec_span(mem) < exec_span(disk)


def test_invalid_input_tier_rejected(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(stack)
    with pytest.raises(ValueError, match="input tier"):
        umgr.submit_units(ComputeUnitDescription(cores=1,
                                                 input_tier="ssd"))


def test_kmeans_in_memory_caching_speeds_iterations(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(stack, nodes=2)
    points = generate_points(2000, 4, seed=2)
    expected = kmeans_reference(points, 4, iterations=3)
    spans = {}
    for cached in (False, True):
        out = {}

        def wl(_cached=cached, _out=out):
            t0 = env.now
            from repro.analytics.kmeans import KMeansCost
            cost = KMeansCost(bytes_per_point_in=200_000.0)
            c, units = yield from run_kmeans_pilot(
                umgr, points, 4, ntasks=4, iterations=3, cost=cost,
                cache_in_memory=_cached)
            _out["span"] = env.now - t0
            _out["centroids"] = c

        env.run(env.process(wl()))
        spans[cached] = out["span"]
        assert np.allclose(out["centroids"], expected)
    assert spans[True] < spans[False]


# ----------------------------------------------------------------- docker
def test_docker_launch_pulls_image_once(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(stack, nodes=1)
    first, = umgr.submit_units([ComputeUnitDescription(
        cores=1, launch_method="docker", cpu_seconds=1.0)])
    env.run(umgr.wait_units([first]))
    second, = umgr.submit_units([ComputeUnitDescription(
        cores=1, launch_method="docker", cpu_seconds=1.0)])
    env.run(umgr.wait_units([second]))
    assert first.state is UnitState.DONE
    assert second.state is UnitState.DONE
    # the first unit pays the image pull (~33s at 12 MB/s for 400 MB);
    # the second runs from the node's cache
    first_total = (first.timestamp(UnitState.AGENT_STAGING_OUTPUT)
                   - first.timestamp(UnitState.AGENT_SCHEDULING))
    second_total = (second.timestamp(UnitState.AGENT_STAGING_OUTPUT)
                    - second.timestamp(UnitState.AGENT_SCHEDULING))
    assert first_total > second_total + 10.0


def test_docker_skips_lustre_environment_load(stack):
    env, registry, session, pmgr, umgr = stack
    # big Lustre environment: plain fork units pay it, docker units don't
    env_, registry_, session_, pmgr_, umgr_ = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(task_environment_bytes=2e9)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))

    warm, = umgr.submit_units([ComputeUnitDescription(
        cores=1, launch_method="docker", cpu_seconds=1.0)])
    env.run(umgr.wait_units([warm]))  # pays the image pull
    docker, fork = umgr.submit_units([
        ComputeUnitDescription(cores=1, launch_method="docker",
                               cpu_seconds=1.0),
        ComputeUnitDescription(cores=1, launch_method="fork",
                               cpu_seconds=1.0)])
    env.run(umgr.wait_units([docker, fork]))
    total = lambda u: (u.timestamp(UnitState.AGENT_STAGING_OUTPUT)
                       - u.timestamp(UnitState.AGENT_SCHEDULING))
    # fork reads 2 GB from Lustre before starting; docker does not
    assert total(fork) > total(docker) + 3.0


def test_unknown_launch_method_fails_unit(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(stack)
    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, launch_method="srun"))
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.FAILED
    assert "launch method" in units[0].stderr
