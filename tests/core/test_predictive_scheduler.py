"""Tests for the predictive Unit-Manager scheduler (§V future work)."""

import pytest

from repro.api import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotState,
    UnitState,
)
from repro.core.unit_manager import PredictiveScheduler
from tests.core.test_units import fast_agent


def test_alpha_validation():
    with pytest.raises(ValueError):
        PredictiveScheduler(alpha=0.0)
    with pytest.raises(ValueError):
        PredictiveScheduler(alpha=1.5)
    PredictiveScheduler(alpha=1.0)  # boundary is legal


def test_ewma_learning():
    sched = PredictiveScheduler(alpha=0.5)
    sched.observe("pilot.x", 100.0, 1)
    assert sched._ewma["pilot.x"] == 100.0
    sched.observe("pilot.x", 50.0, 1)
    assert sched._ewma["pilot.x"] == pytest.approx(75.0)


def test_backlog_accounting():
    sched = PredictiveScheduler()
    sched._queued_core_seconds["p"] = 100.0
    sched.observe("p", 30.0, 2)
    assert sched._queued_core_seconds["p"] == pytest.approx(40.0)
    sched.observe("p", 100.0, 2)
    assert sched._queued_core_seconds["p"] == 0.0  # never negative


def test_assign_prefers_faster_pilot(stack):
    env, registry, session, pmgr, umgr = stack
    umgr.scheduler = PredictiveScheduler(alpha=1.0)
    slow = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent()))
    fast = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://wrangler", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots([slow, fast])
    env.run(env.all_of([slow.wait(PilotState.ACTIVE),
                        fast.wait(PilotState.ACTIVE)]))
    # teach the scheduler: slow pilot takes 100s/unit, fast takes 10s
    umgr.scheduler.observe(slow.uid, 100.0, 1)
    umgr.scheduler.observe(fast.uid, 10.0, 1)

    units = umgr.submit_units([ComputeUnitDescription(cores=1,
                                                      cpu_seconds=1.0)
                               for _ in range(3)])
    # with ETAs 100 vs 10(+backlog), the fast pilot absorbs the burst
    assert all(u.pilot_uid == fast.uid for u in units)
    env.run(umgr.wait_units(units))
    assert all(u.state is UnitState.DONE for u in units)


def test_backlog_spills_to_other_pilot(stack):
    env, registry, session, pmgr, umgr = stack
    umgr.scheduler = PredictiveScheduler(alpha=1.0)
    a = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent()))
    b = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://wrangler", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots([a, b])
    env.run(env.all_of([a.wait(PilotState.ACTIVE),
                        b.wait(PilotState.ACTIVE)]))
    # both equally fast per unit; queue pressure must spread the burst
    umgr.scheduler.observe(a.uid, 50.0, 1)
    umgr.scheduler.observe(b.uid, 50.0, 1)
    units = umgr.submit_units([ComputeUnitDescription(cores=16,
                                                      cpu_seconds=1.0)
                               for _ in range(8)])
    targets = {u.pilot_uid for u in units}
    assert targets == {a.uid, b.uid}


def test_learning_from_real_executions(stack):
    env, registry, session, pmgr, umgr = stack
    umgr.scheduler = PredictiveScheduler()
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(cores=1,
                                                      cpu_seconds=40.0)])
    env.run(umgr.wait_units(units))
    # the watcher fed the observation back automatically
    assert pilot.uid in umgr.scheduler._ewma
    assert umgr.scheduler._ewma[pilot.uid] > 30.0
