"""The MongoDB stand-in's indexed query path.

Equality queries on non-``_id`` keys are served from lazily built
secondary indexes.  These tests pin the contract that makes that safe:
indexed results are byte-identical (same docs, same order) to the full
scan they replace, through inserts, updates that move documents
between buckets, and unhashable values (which fall back to scanning).
"""

import random

from repro.core.db import Database
from repro.sim import Environment


def make_collection():
    env = Environment()
    return Database(env).collection("units")


def scan(col, query):
    """The pre-index reference semantics: a verbatim linear scan."""
    return [doc for doc in col._docs.values()
            if all(doc.get(k) == v for k, v in query.items())]


def test_indexed_find_matches_scan_order():
    col = make_collection()
    for i in range(50):
        col.insert({"_id": f"u{i}", "pilot": f"p{i % 3}",
                    "state": "NEW"})
    query = {"pilot": "p1", "state": "NEW"}
    assert col.find(query) == scan(col, query)
    # Index now exists; later inserts must land in it.
    col.insert({"_id": "u50", "pilot": "p1", "state": "NEW"})
    assert col.find(query) == scan(col, query)
    assert [d["_id"] for d in col.find(query)][-1] == "u50"


def test_update_moves_docs_between_buckets():
    col = make_collection()
    for i in range(10):
        col.insert({"_id": f"u{i}", "pilot": "p0", "state": "NEW"})
    assert len(col.find({"state": "NEW"})) == 10
    col.update_one({"_id": "u3"}, {"state": "DONE"})
    col.update_one({"_id": "u7"}, {"state": "DONE", "exit_code": 0})
    assert [d["_id"] for d in col.find({"state": "NEW"})] == [
        f"u{i}" for i in range(10) if i not in (3, 7)]
    assert [d["_id"] for d in col.find({"state": "DONE"})] == ["u3", "u7"]
    # Move one back: it re-enters the NEW bucket in scan position.
    col.update_one({"_id": "u3"}, {"state": "NEW"})
    assert col.find({"state": "NEW"}) == scan(col, {"state": "NEW"})


def test_randomized_churn_differential():
    col = make_collection()
    rng = random.Random(11)
    states = ["NEW", "SCHED", "RUN", "DONE"]
    for i in range(200):
        col.insert({"_id": f"u{i}", "pilot": f"p{rng.randrange(4)}",
                    "state": rng.choice(states)})
    for _ in range(500):
        if rng.random() < 0.5:
            col.update_one({"_id": f"u{rng.randrange(200)}"},
                           {"state": rng.choice(states)})
        else:
            query = {"state": rng.choice(states)}
            if rng.random() < 0.5:
                query["pilot"] = f"p{rng.randrange(4)}"
            assert col.find(query) == scan(col, query)
    for state in states:
        assert col.find({"state": state}) == scan(col, {"state": state})


def test_unhashable_values_fall_back_to_scan():
    col = make_collection()
    col.insert({"_id": "a", "tags": ["x"], "state": "NEW"})
    col.insert({"_id": "b", "tags": ["x"], "state": "NEW"})
    # Unhashable doc values poison that index; results still correct.
    assert col.find({"tags": ["x"]}) == scan(col, {"tags": ["x"]})
    col.update_one({"_id": "a"}, {"tags": ["y"]})
    assert col.find({"tags": ["y"]}) == [col.find_one({"_id": "a"})]
    # Hashable keys stay indexed alongside.
    assert col.find({"state": "NEW"}) == scan(col, {"state": "NEW"})


def test_no_match_and_missing_key_queries():
    col = make_collection()
    col.insert({"_id": "a", "state": "NEW"})
    assert col.find({"state": "GONE"}) == []
    assert col.find({"nope": 1}) == []
    # Docs lacking the key match a None query value, as the scan did.
    assert col.find({"nope": None}) == scan(col, {"nope": None})
