"""Core-test fixtures live in the top-level tests/conftest.py."""
