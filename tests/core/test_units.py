"""Tests for Compute-Unit submission, execution and failure handling."""

import pytest

from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotState,
    UnitState,
)
from repro.core.unit_manager import BackfillScheduler


def fast_agent(**kw):
    defaults = dict(bootstrap_seconds=2.0, db_connect_seconds=0.2,
                    db_poll_interval=0.2, spawn_overhead_seconds=0.1)
    defaults.update(kw)
    return AgentConfig(**defaults)


def active_pilot(env, pmgr, umgr, nodes=2, **agent_kw):
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=nodes, runtime=600,
        agent_config=fast_agent(**agent_kw)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    return pilot


def test_unit_done_with_result(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, cpu_seconds=5.0, function=lambda a, b: a + b,
        args=(20, 22)))
    env.run(umgr.wait_units(units))
    unit = units[0]
    assert unit.state is UnitState.DONE
    assert unit.result == 42
    assert unit.exit_code == 0


def test_unit_state_sequence(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(cores=1,
                                                     cpu_seconds=1.0))
    env.run(umgr.wait_units(units))
    states = [s for _, s in units[0].history]
    assert states == [
        UnitState.NEW, UnitState.UMGR_SCHEDULING,
        UnitState.AGENT_STAGING_INPUT, UnitState.AGENT_SCHEDULING,
        UnitState.EXECUTING, UnitState.AGENT_STAGING_OUTPUT,
        UnitState.DONE]


def test_unit_cpu_seconds_scale_runtime(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    fast, slow = umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=1.0),
        ComputeUnitDescription(cores=1, cpu_seconds=300.0)])
    env.run(umgr.wait_units([fast, slow]))
    dur = lambda u: (u.timestamp(UnitState.AGENT_STAGING_OUTPUT)
                     - u.timestamp(UnitState.EXECUTING))
    assert dur(slow) > dur(fast) + 250


def test_multicore_unit_speedup(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    one, sixteen = umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=160.0),
        ComputeUnitDescription(cores=16, cpu_seconds=160.0)])
    env.run(umgr.wait_units([one, sixteen]))
    dur = lambda u: (u.timestamp(UnitState.AGENT_STAGING_OUTPUT)
                     - u.timestamp(UnitState.EXECUTING))
    assert dur(sixteen) < dur(one) / 8


def test_units_queue_beyond_capacity(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr, nodes=1)  # 16 cores
    units = umgr.submit_units([
        ComputeUnitDescription(cores=8, cpu_seconds=80.0)  # 10s each
        for _ in range(4)])  # 32 cores wanted, 16 available
    env.run(umgr.wait_units(units))
    assert all(u.state is UnitState.DONE for u in units)
    # at most 2 executed concurrently: the third unit waits a wave
    starts = sorted(u.timestamp(UnitState.EXECUTING) for u in units)
    assert starts[2] > starts[0] + 5.0


def test_failing_function_marks_unit_failed(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)

    def boom():
        raise ValueError("numerical disaster")

    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, function=boom))
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.FAILED
    assert "numerical disaster" in units[0].stderr
    assert units[0].exit_code == 1


def test_agent_survives_unit_failure(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)

    def boom():
        raise RuntimeError("x")

    bad = umgr.submit_units(ComputeUnitDescription(cores=1, function=boom))
    env.run(umgr.wait_units(bad))
    good = umgr.submit_units(ComputeUnitDescription(
        cores=1, function=lambda: "fine"))
    env.run(umgr.wait_units(good))
    assert good[0].state is UnitState.DONE
    assert good[0].result == "fine"


def test_missing_stage_in_fails_unit(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(
        cores=1, input_staging=(("/scratch/missing.dat", 1000),)))
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.FAILED
    assert "stage-in missing" in units[0].stderr


def test_stage_in_and_out_roundtrip(stack):
    env, registry, session, pmgr, umgr = stack
    site = registry.lookup("stampede")
    site.scratch.touch("/scratch/input.dat", 5e6)
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(
        cores=1,
        input_staging=(("/scratch/input.dat", 5e6),),
        output_staging=(("/scratch/output.dat", 2e6),)))
    env.run(umgr.wait_units(units))
    assert units[0].state is UnitState.DONE
    assert site.scratch.exists("/scratch/output.dat")
    assert site.scratch.size("/scratch/output.dat") == 2e6


def test_submit_before_pilot_rejected(stack):
    env, registry, session, pmgr, umgr = stack
    with pytest.raises(RuntimeError, match="add_pilots"):
        umgr.submit_units(ComputeUnitDescription(cores=1))


def test_unit_validation(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    with pytest.raises(ValueError):
        umgr.submit_units(ComputeUnitDescription(cores=0))
    with pytest.raises(ValueError):
        umgr.submit_units(ComputeUnitDescription(cpu_seconds=-1))


def test_cancel_pending_units(stack):
    env, registry, session, pmgr, umgr = stack
    # pilot that never becomes active within the test horizon
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(bootstrap_seconds=1e5)))
    umgr.add_pilots(pilot)
    units = umgr.submit_units([ComputeUnitDescription(cores=1)])

    def driver():
        yield env.timeout(1.0)
        umgr.cancel_units(units)
        yield umgr.wait_units(units)

    env.run(env.process(driver()))
    assert units[0].state is UnitState.CANCELED


def test_pilot_teardown_cancels_inflight_units(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = active_pilot(env, pmgr, umgr)
    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=1e6)])

    def driver():
        yield units[0].wait(UnitState.EXECUTING)
        pmgr.cancel_pilot(pilot.uid)
        yield umgr.wait_units(units)

    env.run(env.process(driver()))
    assert units[0].state is UnitState.CANCELED


def test_round_robin_spreads_units(stack):
    env, registry, session, pmgr, umgr = stack
    a = active_pilot(env, pmgr, umgr)
    b = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://wrangler", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(b)
    env.run(b.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(cores=1)
                               for _ in range(4)])
    assigned = {u.pilot_uid for u in units}
    assert assigned == {a.uid, b.uid}
    env.run(umgr.wait_units(units))
    assert all(u.state is UnitState.DONE for u in units)


def test_backfill_scheduler_prefers_active(stack):
    env, registry, session, pmgr, umgr = stack
    umgr.scheduler = BackfillScheduler()
    active = active_pilot(env, pmgr, umgr)
    pending = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://wrangler", nodes=1, runtime=600,
        agent_config=fast_agent(bootstrap_seconds=1e5)))
    umgr.add_pilots(pending)
    units = umgr.submit_units([ComputeUnitDescription(cores=1)
                               for _ in range(3)])
    assert all(u.pilot_uid == active.uid for u in units)


def test_unit_startup_time_metric(stack):
    env, registry, session, pmgr, umgr = stack
    active_pilot(env, pmgr, umgr)
    units = umgr.submit_units(ComputeUnitDescription(cores=1,
                                                     cpu_seconds=1.0))
    env.run(umgr.wait_units(units))
    startup = units[0].startup_time
    # poll interval + spawn overhead; small but strictly positive
    assert 0.0 < startup < 5.0
