"""Tests for Pilot-Data and the Compute-Data-Service.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug; plain asserts work fine.
"""

import pytest

from repro.api import (
    ComputeDataService,
    ComputePilotDescription,
    ComputeUnitDescription,
    DataUnitDescription,
    PilotDataDescription,
    PilotState,
    UnitState,
)
from repro.sim import SimulationError
from tests.core.test_units import fast_agent

MB = 1024 ** 2


def start_pilot(stack, resource, nodes=1):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource=resource, nodes=nodes, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    return pilot


def test_pilot_data_reserves_capacity(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)
    pd = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=10 * MB))
    assert pd.free == 10 * MB
    assert pd.site.hostname == "stampede"


def test_pilot_data_validation(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)
    with pytest.raises(ValueError):
        cds.create_pilot_data(PilotDataDescription(
            resource="slurm://stampede", size_bytes=0))


def test_submit_data_unit_creates_files(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)
    pd = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=100 * MB))
    holder = {}

    def driver():
        du = yield from cds.submit_data_unit(DataUnitDescription(
            name="trajectory",
            files=(("frames.dat", 30 * MB), ("energies.dat", 2 * MB))),
            pd)
        holder["du"] = du

    env.run(env.process(driver()))
    du = holder["du"]
    assert du.state == "Available"
    assert pd.used == 32 * MB
    site = registry.lookup("stampede")
    assert site.scratch.exists(pd.path_for(du.uid, "frames.dat"))


def test_data_unit_overflow_rejected(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)
    pd = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=10 * MB))

    def driver():
        with pytest.raises(SimulationError, match="full"):
            yield from cds.submit_data_unit(DataUnitDescription(
                name="big", files=(("x", 20 * MB),)), pd)

    env.run(env.process(driver()))


def test_replicate_cross_site_pays_wan(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr, inter_site_bw=10 * MB)
    pd_st = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=100 * MB))
    pd_wr = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://wrangler", size_bytes=100 * MB))
    times = {}

    def driver():
        du = yield from cds.submit_data_unit(DataUnitDescription(
            name="d", files=(("f", 50 * MB),)), pd_st)
        t0 = env.now
        yield env.process(cds.replicate(du, pd_wr))
        times["wan"] = env.now - t0
        assert du.located_on("wrangler") is pd_wr
        assert len(du.replicas) == 2

    env.run(env.process(driver()))
    assert times["wan"] >= 5.0  # 50MB over a 10MB/s WAN


def test_replicate_idempotent(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)
    pd = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=100 * MB))

    def driver():
        du = yield from cds.submit_data_unit(DataUnitDescription(
            name="d", files=(("f", 10 * MB),)), pd)
        yield env.process(cds.replicate(du, pd))
        assert len(du.replicas) == 1  # no duplicate replica
        assert pd.used == 10 * MB

    env.run(env.process(driver()))


def test_delete_data_unit_frees_space(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)
    pd = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=100 * MB))

    def driver():
        du = yield from cds.submit_data_unit(DataUnitDescription(
            name="d", files=(("f", 10 * MB),)), pd)
        cds.delete_data_unit(du)
        assert pd.used == 0
        assert du.state == "New"

    env.run(env.process(driver()))


def test_compute_unit_scheduled_on_data_local_pilot(stack):
    env, registry, session, pmgr, umgr = stack
    pilot_st = start_pilot(stack, "slurm://stampede")
    pilot_wr = start_pilot(stack, "slurm://wrangler")
    cds = ComputeDataService(session, umgr)
    pd_wr = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://wrangler", size_bytes=100 * MB))
    holder = {}

    def driver():
        du = yield from cds.submit_data_unit(DataUnitDescription(
            name="input", files=(("points.csv", 40 * MB),)), pd_wr)
        unit = yield from cds.submit_compute_unit(
            ComputeUnitDescription(cores=1, cpu_seconds=5.0,
                                   function=lambda: "done"),
            input_data=[du])
        holder["unit"] = unit
        yield umgr.wait_units([unit])

    env.run(env.process(driver()))
    unit = holder["unit"]
    # data lives on wrangler -> unit must run there
    assert unit.pilot_uid == pilot_wr.uid
    assert unit.state is UnitState.DONE
    assert unit.result == "done"


def test_missing_data_replicated_before_execution(stack):
    env, registry, session, pmgr, umgr = stack
    pilot_st = start_pilot(stack, "slurm://stampede")
    cds = ComputeDataService(session, umgr, inter_site_bw=10 * MB)
    pd_st = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=100 * MB))
    pd_wr = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://wrangler", size_bytes=100 * MB))
    holder = {}

    def driver():
        # data starts on wrangler, but the only pilot is on stampede
        du = yield from cds.submit_data_unit(DataUnitDescription(
            name="remote", files=(("f", 20 * MB),)), pd_wr)
        unit = yield from cds.submit_compute_unit(
            ComputeUnitDescription(cores=1, cpu_seconds=1.0),
            input_data=[du])
        holder["du"] = du
        holder["unit"] = unit
        yield umgr.wait_units([unit])

    env.run(env.process(driver()))
    assert holder["unit"].state is UnitState.DONE
    # the CDS replicated the data to stampede first
    assert holder["du"].located_on("stampede") is not None
    assert pd_st.used == 20 * MB


def test_compute_unit_without_pilot_rejected(stack):
    env, registry, session, pmgr, umgr = stack
    cds = ComputeDataService(session, umgr)

    def driver():
        with pytest.raises(SimulationError, match="no usable pilots"):
            yield from cds.submit_compute_unit(
                ComputeUnitDescription(cores=1))

    env.run(env.process(driver()))


def test_affinity_prefers_largest_byte_share(stack):
    env, registry, session, pmgr, umgr = stack
    pilot_st = start_pilot(stack, "slurm://stampede")
    pilot_wr = start_pilot(stack, "slurm://wrangler")
    cds = ComputeDataService(session, umgr)
    pd_st = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://stampede", size_bytes=100 * MB))
    pd_wr = cds.create_pilot_data(PilotDataDescription(
        resource="slurm://wrangler", size_bytes=100 * MB))
    holder = {}

    def driver():
        small = yield from cds.submit_data_unit(DataUnitDescription(
            name="small", files=(("s", 5 * MB),)), pd_st)
        big = yield from cds.submit_data_unit(DataUnitDescription(
            name="big", files=(("b", 50 * MB),)), pd_wr)
        unit = yield from cds.submit_compute_unit(
            ComputeUnitDescription(cores=1, cpu_seconds=1.0),
            input_data=[small, big])
        holder["unit"] = unit
        yield umgr.wait_units([unit])

    env.run(env.process(driver()))
    # 50 MB on wrangler vs 5 MB on stampede -> run on wrangler
    assert holder["unit"].pilot_uid == pilot_wr.uid
    assert holder["unit"].state is UnitState.DONE
