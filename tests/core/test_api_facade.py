"""The repro.api facade and the deprecated repro.core aliases."""

import importlib
import re
import warnings
from pathlib import Path

import pytest

import repro.api
import repro.core
from repro.api import PilotManager, Session, UnitManager
from repro.faults.plan import FaultPlan


def test_api_surface_is_complete():
    for name in repro.api.__all__:
        assert getattr(repro.api, name) is not None, name
    # the headline objects are the canonical ones, not copies
    from repro.core.session import Session as home_session
    assert repro.api.Session is home_session


def test_session_facade_hands_out_singletons(stack):
    env, registry, session, pmgr, umgr = stack
    assert session.pilot_manager() is session.pilot_manager()
    assert session.unit_manager() is session.unit_manager()
    assert isinstance(session.pilot_manager(), PilotManager)
    assert isinstance(session.unit_manager(), UnitManager)


def test_session_facade_kwargs_build_fresh_managers(stack):
    env, registry, session, pmgr, umgr = stack
    from repro.api import BackfillScheduler, RestartPolicy
    singleton = session.unit_manager()
    custom = session.unit_manager(restart_policy=RestartPolicy())
    assert custom is not singleton
    assert custom.restart_policy is not None
    assert session.unit_manager() is singleton
    assert session.unit_manager(
        scheduler=BackfillScheduler()) is not singleton
    fresh_pmgr = session.pilot_manager(heartbeat_timeout=10.0)
    assert fresh_pmgr is not session.pilot_manager()


def test_session_faults_installs_injector(stack):
    env, registry, session, pmgr, umgr = stack
    assert env.faults is None
    plan = session.faults
    assert isinstance(plan, FaultPlan)
    assert session.faults is plan            # cached
    assert env.faults is plan.injector       # installed on the env


def test_session_telemetry_installs_hub(stack):
    env, registry, session, pmgr, umgr = stack
    tel = session.telemetry
    assert env.telemetry is tel
    assert session.telemetry is tel


def test_core_alias_access_warns_and_resolves():
    with pytest.warns(DeprecationWarning,
                      match="from repro.api import Session"):
        aliased = repro.core.Session
    assert aliased is Session
    with pytest.warns(DeprecationWarning):
        assert repro.core.UnitManager is UnitManager
    assert sorted(repro.core.__all__) == list(repro.core.__all__)
    assert "Session" in dir(repro.core)


def test_core_submodule_imports_stay_silent():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        core_session = importlib.import_module("repro.core.session")
        assert core_session.Session is Session


def test_core_unknown_attribute_raises():
    with pytest.raises(AttributeError, match="Nonsense"):
        repro.core.Nonsense


def test_no_deprecated_core_imports_left_in_src():
    """The migration gate: src/ must import the facade, not the aliases."""
    src = Path(repro.api.__file__).resolve().parents[1]
    pattern = re.compile(
        r"^\s*from repro\.core import (?P<names>[^(\n]+)$", re.MULTILINE)
    aliased = set(repro.core.__all__)
    offenders = []
    for path in sorted(src.rglob("*.py")):
        for match in pattern.finditer(path.read_text()):
            names = {n.strip() for n in match.group("names").split(",")}
            if names & aliased:
                offenders.append(f"{path.name}: {sorted(names & aliased)}")
    assert not offenders, offenders
