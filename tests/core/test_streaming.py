"""Tests for the streaming handoff (§V future capability) vs persist."""

import numpy as np
import pytest

from repro.cluster import Machine, stampede
from repro.core.streaming import (
    StreamChannel,
    persist_handoff,
    stream_pipeline,
)
from repro.experiments.harness import experiment_machine
from repro.sim import Environment, SimulationError

MB = 1e6


def chunks(n=6, nbytes=50 * MB):
    return [(list(range(i * 10, i * 10 + 10)), nbytes) for i in range(n)]


def test_channel_roundtrip_order():
    env = Environment()
    channel = StreamChannel(env, bandwidth=100 * MB)
    got = []

    def driver():
        out = yield from stream_pipeline(
            env, channel, chunks(4), consume_chunk=sum)
        got.extend(out)

    env.run(env.process(driver()))
    assert got == [sum(range(i * 10, i * 10 + 10)) for i in range(4)]
    assert channel.chunks_streamed == 4


def test_channel_back_pressure():
    env = Environment()
    channel = StreamChannel(env, bandwidth=1e12, capacity_chunks=2)
    timeline = []

    def producer():
        for i in range(5):
            yield from channel.put(i, 1.0)
            timeline.append(("put", i, env.now))
        yield from channel.close()

    def slow_consumer():
        while True:
            item = yield from channel.get()
            if item is None:
                return
            yield env.timeout(10.0)

    env.process(producer())
    consumer = env.process(slow_consumer())
    env.run(consumer)
    # with capacity 2 and a 10s consumer, later puts are throttled
    put_times = [t for op, i, t in timeline]
    assert put_times[-1] >= 20.0


def test_streaming_beats_persist_for_pipelined_stages():
    """The §V claim, quantified: overlap + no filesystem round-trip."""
    spans = {}
    work = chunks(8, nbytes=100 * MB)

    # persist through the contended Lustre share
    env1 = Environment()
    machine1 = Machine(env1, experiment_machine("stampede", 2))

    def persist_driver():
        yield from persist_handoff(
            env1, machine1.shared_fs, work, consume_chunk=sum)

    env1.run(env1.process(persist_driver()))
    spans["persist"] = env1.now

    # stream over the interconnect
    env2 = Environment()
    machine2 = Machine(env2, experiment_machine("stampede", 2))
    channel = StreamChannel(
        env2, network=machine2.network,
        src=machine2.nodes[0].name, dst=machine2.nodes[1].name)

    def stream_driver():
        yield from stream_pipeline(env2, channel, work, consume_chunk=sum)

    env2.run(env2.process(stream_driver()))
    spans["stream"] = env2.now

    assert spans["stream"] < spans["persist"] / 2


def test_persist_and_stream_agree_on_results():
    work = chunks(5, nbytes=1 * MB)
    env1 = Environment()
    machine1 = Machine(env1, stampede(num_nodes=1))
    holder = {}

    def persist_driver():
        holder["persist"] = yield from persist_handoff(
            env1, machine1.shared_fs, work, consume_chunk=sum)

    env1.run(env1.process(persist_driver()))

    env2 = Environment()
    channel = StreamChannel(env2, bandwidth=1e9)

    def stream_driver():
        holder["stream"] = yield from stream_pipeline(
            env2, channel, work, consume_chunk=sum)

    env2.run(env2.process(stream_driver()))
    assert holder["persist"] == holder["stream"]


def test_put_after_close_rejected():
    env = Environment()
    channel = StreamChannel(env, bandwidth=1e9)

    def driver():
        yield from channel.close()
        with pytest.raises(SimulationError, match="closed"):
            yield from channel.put([1], 1.0)

    env.run(env.process(driver()))


def test_channel_validation():
    env = Environment()
    with pytest.raises(SimulationError):
        StreamChannel(env, bandwidth=0)
    with pytest.raises(SimulationError):
        StreamChannel(env, capacity_chunks=0)


def test_real_payloads_flow_through():
    env = Environment()
    channel = StreamChannel(env, bandwidth=1e9)
    frames = [np.full((4, 3), float(i)) for i in range(3)]
    work = [(f, f.nbytes) for f in frames]
    holder = {}

    def driver():
        holder["means"] = yield from stream_pipeline(
            env, channel, work, consume_chunk=lambda f: float(f.mean()))

    env.run(env.process(driver()))
    assert holder["means"] == [0.0, 1.0, 2.0]
