"""Tests for the agent heartbeat + client-side heartbeat monitor."""

import pytest

from repro.api import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
)
from repro.cluster import stampede
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment
from tests.core.test_units import fast_agent

FAST_RMS = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                     prolog_seconds=0.5, epilog_seconds=0.2)


def make_stack(hb_timeout=300.0, hb_check=30.0):
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2),
                           rms_config=FAST_RMS))
    session = Session(env, registry)
    pmgr = PilotManager(session, heartbeat_timeout=hb_timeout,
                        heartbeat_check_interval=hb_check)
    return env, session, pmgr, UnitManager(session)


def test_heartbeats_advance_while_active():
    env, session, pmgr, umgr = make_stack()
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(db_poll_interval=1.0)))
    env.run(pilot.wait(PilotState.ACTIVE))
    env.run(until=env.now + 10.0)
    first = pmgr.last_heartbeat(pilot.uid)
    assert first is not None
    env.run(until=env.now + 10.0)
    assert pmgr.last_heartbeat(pilot.uid) > first


def test_healthy_pilot_not_flagged():
    env, session, pmgr, umgr = make_stack(hb_timeout=20.0, hb_check=5.0)
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(db_poll_interval=1.0)))
    env.run(pilot.wait(PilotState.ACTIVE))
    env.run(until=env.now + 100.0)
    assert pilot.state is PilotState.ACTIVE


def test_hung_agent_detected_and_pilot_failed():
    env, session, pmgr, umgr = make_stack(hb_timeout=20.0, hb_check=5.0)
    # a poll interval far beyond the timeout models a hung agent: it
    # goes ACTIVE, heartbeats once, then never returns to the loop
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(db_poll_interval=1e6)))
    env.run(pilot.wait(PilotState.ACTIVE))
    env.run(pilot.wait())
    assert pilot.state is PilotState.FAILED


def test_idle_monitor_schedules_no_polling_events():
    """With no ACTIVE pilot the monitor parks on a wake event instead
    of polling, so an idle PilotManager adds ~zero events on top of the
    site's own background load (the old fixed-interval loop added one
    timeout per check interval — 200 over this horizon)."""

    def idle_events(with_pmgr):
        env = Environment()
        registry = Registry()
        registry.register(Site(env, stampede(num_nodes=2),
                               rms_config=FAST_RMS))
        session = Session(env, registry)
        if with_pmgr:
            PilotManager(session, heartbeat_timeout=20.0,
                         heartbeat_check_interval=5.0)
        before = env._seq
        env.run(until=1000.0)
        return env._seq - before

    assert idle_events(True) - idle_events(False) < 10


def test_monitor_wakes_and_stays_phase_aligned():
    """Resuming from the park keeps checks on the k * interval grid, so
    detection instants (and digests) match the always-polling loop."""
    env, session, pmgr, umgr = make_stack(hb_timeout=20.0, hb_check=5.0)
    env.run(until=12.3)  # park through an odd offset first
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(db_poll_interval=1e6)))
    env.run(pilot.wait(PilotState.ACTIVE))
    env.run(pilot.wait())
    assert pilot.state is PilotState.FAILED
    # the failure is recorded at a heartbeat-check instant
    assert env.now % 5.0 == pytest.approx(0.0, abs=1e-9)


def test_units_on_hung_pilot_stay_unclaimed():
    env, session, pmgr, umgr = make_stack(hb_timeout=20.0, hb_check=5.0)
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(db_poll_interval=1e6)))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(cores=1)])
    env.run(pilot.wait())
    assert pilot.state is PilotState.FAILED
    # the unit was never executed; clients can cancel and resubmit
    assert not units[0].state.is_final
    umgr.cancel_units(units)
    env.run(umgr.wait_units(units))
    assert units[0].state.value == "Canceled"
