"""Tests for pilot submission, activation, cancellation, walltime."""

import pytest

from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    PilotState,
)


def fast_agent(**kw):
    defaults = dict(bootstrap_seconds=2.0, db_connect_seconds=0.2,
                    db_poll_interval=0.2, spawn_overhead_seconds=0.1)
    defaults.update(kw)
    return AgentConfig(**defaults)


def test_pilot_reaches_active(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=2, runtime=60,
        agent_config=fast_agent()))
    env.run(pilot.wait(PilotState.ACTIVE))
    assert pilot.state is PilotState.ACTIVE
    assert pilot.agent_info["cores"] == 32
    assert len(pilot.agent_info["nodes"]) == 2


def test_pilot_state_history_ordered(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=60,
        agent_config=fast_agent()))
    env.run(pilot.wait(PilotState.ACTIVE))
    states = [s for _, s in pilot.history]
    assert states == [PilotState.NEW, PilotState.PENDING_LAUNCH,
                      PilotState.LAUNCHING, PilotState.PENDING_ACTIVE,
                      PilotState.ACTIVE]
    times = [t for t, _ in pilot.history]
    assert times == sorted(times)


def test_pilot_cancel(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=60,
        agent_config=fast_agent()))

    def driver():
        yield pilot.wait(PilotState.ACTIVE)
        pmgr.cancel_pilot(pilot.uid)
        yield pilot.wait()

    env.run(env.process(driver()))
    assert pilot.state is PilotState.CANCELED


def test_pilot_walltime_finalizes(stack):
    env, registry, session, pmgr, umgr = stack
    # runtime in minutes: 0.2 -> 12s walltime; bootstrap eats most of it
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=0.2,
        agent_config=fast_agent()))
    env.run(pilot.wait())
    assert pilot.state is PilotState.DONE


def test_pilot_validation(stack):
    env, registry, session, pmgr, umgr = stack
    with pytest.raises(ValueError):
        pmgr.submit_pilot(ComputePilotDescription(
            resource="slurm://stampede", nodes=0))
    with pytest.raises(ValueError):
        pmgr.submit_pilot(ComputePilotDescription(
            resource="slurm://stampede", runtime=-5))
    with pytest.raises(ValueError):
        pmgr.submit_pilot(ComputePilotDescription(
            resource="slurm://stampede",
            agent_config=AgentConfig(lrm="mesos")))


def test_pilot_unknown_site(stack):
    env, registry, session, pmgr, umgr = stack
    with pytest.raises(KeyError):
        pmgr.submit_pilot(ComputePilotDescription(
            resource="slurm://comet", nodes=1))


def test_pilot_timestamps_queryable(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=60,
        agent_config=fast_agent()))
    env.run(pilot.wait(PilotState.ACTIVE))
    t_launch = pilot.timestamp(PilotState.LAUNCHING)
    t_active = pilot.timestamp(PilotState.ACTIVE)
    assert t_launch is not None and t_active is not None
    assert t_active > t_launch
    assert pilot.timestamp(PilotState.FAILED) is None


def test_two_pilots_on_two_machines(stack):
    env, registry, session, pmgr, umgr = stack
    a = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=60,
        agent_config=fast_agent()))
    b = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://wrangler", nodes=1, runtime=60,
        agent_config=fast_agent()))
    env.run(env.all_of([a.wait(PilotState.ACTIVE),
                        b.wait(PilotState.ACTIVE)]))
    assert a.agent_info["cores"] == 16
    assert b.agent_info["cores"] == 48
