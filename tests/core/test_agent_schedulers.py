"""Direct unit tests for the agent schedulers."""

import pytest

from repro.analysis.sanitizer import InvariantViolation, SimSanitizer
from repro.cluster import Machine, stampede
from repro.core.agent.scheduler import (
    ContinuousScheduler,
    SlotAllocation,
    YarnAgentScheduler,
)
from repro.sim import Environment, SimulationError
from repro.yarn import YarnCluster, YarnConfig


def nodes(n=2):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=n))
    return env, machine.nodes


# ----------------------------------------------------------- continuous
def test_pack_policy_fills_first_node():
    env, node_list = nodes(2)
    sched = ContinuousScheduler(env, node_list, policy="pack")
    grants = []

    def consume():
        for _ in range(4):
            alloc = yield sched.allocate(4)
            grants.append(alloc.primary_node.name)

    env.run(env.process(consume()))
    assert grants == [node_list[0].name] * 4  # 16 cores: all on node 0


def test_spread_policy_balances_nodes():
    env, node_list = nodes(2)
    sched = ContinuousScheduler(env, node_list, policy="spread")
    grants = []

    def consume():
        for _ in range(4):
            alloc = yield sched.allocate(4)
            grants.append(alloc.primary_node.name)

    env.run(env.process(consume()))
    assert grants.count(node_list[0].name) == 2
    assert grants.count(node_list[1].name) == 2


def test_multi_node_unit_spans():
    env, node_list = nodes(2)
    sched = ContinuousScheduler(env, node_list, policy="pack")
    holder = {}

    def consume():
        alloc = yield sched.allocate(24)  # > 16 cores: spans 2 nodes
        holder["alloc"] = alloc

    env.run(env.process(consume()))
    alloc = holder["alloc"]
    assert alloc.total_cores == 24
    assert len(alloc.assignments) == 2


def test_fifo_no_overtaking_and_release():
    env, node_list = nodes(1)
    sched = ContinuousScheduler(env, node_list)
    order = []

    def user(name, cores, hold):
        alloc = yield sched.allocate(cores)
        order.append((env.now, name))
        yield env.timeout(hold)
        sched.release(alloc)

    env.process(user("big", 16, 10.0))
    env.process(user("blocked-big", 16, 1.0))
    env.process(user("small", 1, 1.0))
    env.run()
    names = [n for _, n in order]
    # strict FIFO: small does NOT overtake blocked-big
    assert names == ["big", "blocked-big", "small"]


def test_oversized_request_rejected():
    env, node_list = nodes(1)
    sched = ContinuousScheduler(env, node_list)
    with pytest.raises(SimulationError, match="cores"):
        sched.allocate(17)
    with pytest.raises(SimulationError):
        sched.allocate(0)


def test_invalid_policy_rejected():
    env, node_list = nodes(1)
    with pytest.raises(SimulationError, match="policy"):
        ContinuousScheduler(env, node_list, policy="random")


def test_free_cores_accounting():
    env, node_list = nodes(1)
    sched = ContinuousScheduler(env, node_list)

    def consume():
        alloc = yield sched.allocate(10)
        assert sched.free_cores == 6
        sched.release(alloc)
        assert sched.free_cores == 16

    env.run(env.process(consume()))


def test_total_cores_cached_at_construction():
    env, node_list = nodes(2)
    sched = ContinuousScheduler(env, node_list)
    expected = sum(n.num_cores for n in node_list)
    assert sched.total_cores == expected

    def consume():
        alloc = yield sched.allocate(5)
        assert sched.total_cores == expected  # invariant under churn
        sched.release(alloc)
        assert sched.total_cores == expected

    env.run(env.process(consume()))


@pytest.mark.parametrize("policy", ["pack", "spread"])
def test_sanitizer_checks_counter_consistency(policy):
    """The installed sanitizer cross-checks the incremental free-core
    counter against a full per-node re-summation on every grant."""
    env, node_list = nodes(2)
    sanitizer = SimSanitizer.install(env)
    sched = ContinuousScheduler(env, node_list, policy=policy)

    def churn():
        held = []
        for cores in (4, 7, 16, 1):
            held.append((yield sched.allocate(cores)))
        for alloc in held[:2]:
            sched.release(alloc)
        held.append((yield sched.allocate(9)))
        for alloc in held[2:]:
            sched.release(alloc)

    env.run(env.process(churn()))
    assert sched.free_cores == sched.total_cores
    assert sanitizer.checks_run["scheduler"] > 0
    assert sanitizer.violations == 0


def test_sanitizer_catches_corrupted_counter():
    env, node_list = nodes(1)
    SimSanitizer.install(env)
    sched = ContinuousScheduler(env, node_list)
    sched._free_cores -= 1  # simulate drift

    def consume():
        yield sched.allocate(1)

    with pytest.raises(InvariantViolation):
        env.run(env.process(consume()))


def test_debug_kwarg_is_deprecated_but_still_checks():
    """``debug=True`` warns but keeps the per-instance checks alive."""
    env, node_list = nodes(1)
    with pytest.warns(DeprecationWarning, match="debug=True"):
        sched = ContinuousScheduler(env, node_list, debug=True)
    sched._free_cores -= 1  # simulate drift

    def consume():
        yield sched.allocate(1)

    with pytest.raises(InvariantViolation):
        env.run(env.process(consume()))


# ------------------------------------------------------------- yarn
def make_yarn_sched(num_nodes=1):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    yarn = YarnCluster(env, machine, machine.nodes, config=YarnConfig())
    env.run(env.process(yarn.start()))
    return env, YarnAgentScheduler(env, yarn.resource_manager,
                                   am_memory_mb=512)


def test_yarn_scheduler_reserves_and_releases():
    env, sched = make_yarn_sched()
    holder = {}

    def consume():
        alloc = yield sched.allocate(cores=2, memory_mb=4096)
        holder["alloc"] = alloc

    env.run(env.process(consume()))
    alloc = holder["alloc"]
    assert alloc.memory_mb == 4096 + 512
    assert alloc.total_cores == 2
    assert sched._reserved_mb == 4608
    sched.release(alloc)
    assert sched._reserved_mb == 0
    assert sched._reserved_cores == 0


def test_yarn_scheduler_blocks_at_cluster_capacity():
    env, sched = make_yarn_sched()
    total_mb = sched.cluster_state()["totalMB"]
    big = total_mb - 512
    granted = []

    def first():
        alloc = yield sched.allocate(cores=1, memory_mb=big)
        granted.append("first")
        yield env.timeout(10.0)
        sched.release(alloc)

    def second():
        yield env.timeout(0.1)
        alloc = yield sched.allocate(cores=1, memory_mb=big)
        granted.append(("second", env.now))

    env.process(first())
    env.process(second())
    env.run(until=60.0)
    assert granted[0] == "first"
    assert granted[1][1] >= 10.0  # waited for the release


def test_yarn_scheduler_rejects_impossible_slot():
    env, sched = make_yarn_sched()
    total_mb = sched.cluster_state()["totalMB"]
    with pytest.raises(SimulationError, match="exceeds"):
        sched.allocate(cores=1, memory_mb=total_mb * 2)


def test_slot_allocation_explicit_cores():
    alloc = SlotAllocation([], memory_mb=1024, cores=3)
    assert alloc.total_cores == 3
    assert alloc.nodes == []
