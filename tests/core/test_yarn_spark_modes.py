"""Tests for the paper's extensions: YARN Mode I/II and Spark pilots.

PYTEST_DONT_REWRITE — assertion rewriting of this module trips a
CPython 3.11 ``ast`` recursion-guard bug (SystemError: AST constructor
recursion depth mismatch); plain asserts work fine.
"""

import pytest

from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotState,
    UnitState,
)
from repro.hadoop_deploy import provision_dedicated_hadoop


def fast_agent(**kw):
    defaults = dict(bootstrap_seconds=2.0, db_connect_seconds=0.2,
                    db_poll_interval=0.2, spawn_overhead_seconds=0.1)
    defaults.update(kw)
    return AgentConfig(**defaults)


def run_pilot_with_units(stack, resource, lrm, n_units=3, nodes=2,
                         unit_kw=None, agent_kw=None):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource=resource, nodes=nodes, runtime=600,
        agent_config=fast_agent(lrm=lrm, **(agent_kw or {}))))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(
        cores=1, cpu_seconds=5.0, **(unit_kw or {}))
        for _ in range(n_units)])
    env.run(umgr.wait_units(units))
    return pilot, units


# ------------------------------------------------------------------ Mode I
def test_mode1_pilot_active_with_yarn(stack):
    env, registry, session, pmgr, umgr = stack
    pilot, units = run_pilot_with_units(stack, "slurm://stampede", "yarn")
    assert pilot.agent_info["lrm"] == "yarn"
    assert pilot.agent_info["lrm_setup_seconds"] > 20.0  # download+daemons
    assert all(u.state is UnitState.DONE for u in units)


def test_mode1_setup_slower_than_fork(stack):
    env, registry, session, pmgr, umgr = stack
    fork_pilot, _ = run_pilot_with_units(stack, "slurm://stampede", "fork",
                                         n_units=1)
    yarn_pilot, _ = run_pilot_with_units(stack, "slurm://wrangler", "yarn",
                                         n_units=1)
    fork_setup = (fork_pilot.timestamp(PilotState.ACTIVE)
                  - fork_pilot.timestamp(PilotState.PENDING_ACTIVE))
    yarn_setup = (yarn_pilot.timestamp(PilotState.ACTIVE)
                  - yarn_pilot.timestamp(PilotState.PENDING_ACTIVE))
    assert yarn_setup > fork_setup + 20.0


def test_mode1_unit_startup_dominated_by_two_phase_allocation(stack):
    pilot, units = run_pilot_with_units(stack, "slurm://stampede", "yarn",
                                        n_units=1)
    # client JVM + AM container + task container: tens of seconds
    assert units[0].startup_time > 15.0


def test_mode1_teardown_stops_daemons(stack):
    env, registry, session, pmgr, umgr = stack
    pilot, units = run_pilot_with_units(stack, "slurm://stampede", "yarn",
                                        n_units=1)
    pmgr.cancel_pilot(pilot.uid)
    env.run(pilot.wait())
    assert pilot.state is PilotState.CANCELED
    # the agent's private YARN/HDFS must be gone: node disks clean
    site = registry.lookup("stampede")
    for node in site.machine.nodes:
        assert node.local_disk.used == 0


def test_mode1_unit_failure_reported(stack):
    env, registry, session, pmgr, umgr = stack

    def boom():
        raise RuntimeError("container payload crash")

    pilot, units = run_pilot_with_units(
        stack, "slurm://stampede", "yarn", n_units=1,
        unit_kw={"function": boom})
    assert units[0].state is UnitState.FAILED
    assert "crash" in units[0].stderr


# ----------------------------------------------------------------- Mode II
def test_mode2_connects_to_dedicated_cluster(stack):
    env, registry, session, pmgr, umgr = stack
    site = registry.lookup("wrangler")
    env.run(env.process(provision_dedicated_hadoop(site)))
    pilot, units = run_pilot_with_units(stack, "slurm://wrangler",
                                        "yarn-connect", n_units=2,
                                        nodes=1)
    assert pilot.agent_info["lrm"] == "yarn-connect"
    assert pilot.agent_info["lrm_setup_seconds"] < 10.0
    assert all(u.state is UnitState.DONE for u in units)


def test_mode2_requires_dedicated_hadoop_machine(stack):
    env, registry, session, pmgr, umgr = stack
    # Stampede has no dedicated Hadoop: the agent bootstrap fails and
    # the pilot ends FAILED.
    pilot = stack[3].submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=60,
        agent_config=fast_agent(lrm="yarn-connect")))
    env.run(pilot.wait())
    assert pilot.state is PilotState.FAILED


def test_mode2_requires_provisioned_cluster(stack):
    env, registry, session, pmgr, umgr = stack
    # Wrangler advertises Hadoop but nothing was provisioned.
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://wrangler", nodes=1, runtime=60,
        agent_config=fast_agent(lrm="yarn-connect")))
    env.run(pilot.wait())
    assert pilot.state is PilotState.FAILED


def test_mode2_faster_activation_than_mode1(stack):
    env, registry, session, pmgr, umgr = stack
    site = registry.lookup("wrangler")
    env.run(env.process(provision_dedicated_hadoop(site)))
    mode2, _ = run_pilot_with_units(stack, "slurm://wrangler",
                                    "yarn-connect", n_units=1, nodes=1)
    mode1, _ = run_pilot_with_units(stack, "slurm://stampede", "yarn",
                                    n_units=1, nodes=1)
    setup = lambda p: (p.timestamp(PilotState.ACTIVE)
                       - p.timestamp(PilotState.PENDING_ACTIVE))
    assert setup(mode2) < setup(mode1) - 20.0


# ---------------------------------------------------------------- AM reuse
def test_am_reuse_cuts_unit_startup(stack):
    """Warm units through the pooled AM skip the client JVM and the AM
    allocation, paying only the task-container phase (ablation A3)."""
    env, registry, session, pmgr, umgr = stack
    plain, plain_units = run_pilot_with_units(
        stack, "slurm://stampede", "yarn", n_units=1)
    plain_more = umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=5.0)
        for _ in range(3)])
    env.run(umgr.wait_units(plain_more))

    reuse, reuse_units = run_pilot_with_units(
        stack, "slurm://wrangler", "yarn", n_units=1,
        agent_kw={"reuse_application_master": True})
    reuse_more = umgr.submit_units([
        ComputeUnitDescription(cores=1, cpu_seconds=5.0)
        for _ in range(3)])
    env.run(umgr.wait_units(reuse_more))
    # the umgr round-robins over both pilots now; keep only each
    # pilot's own units
    plain_warm = [u for u in plain_more if u.pilot_uid == plain.uid]
    reuse_warm = [u for u in reuse_more if u.pilot_uid == reuse.uid]
    mean = lambda us: sum(u.startup_time for u in us) / len(us)
    assert mean(reuse_warm) < mean(plain_warm) - 5.0


def test_am_reuse_results_still_correct(stack):
    pilot, units = run_pilot_with_units(
        stack, "slurm://stampede", "yarn", n_units=4,
        unit_kw={"function": lambda: 7},
        agent_kw={"reuse_application_master": True})
    assert [u.result for u in units] == [7, 7, 7, 7]


# ------------------------------------------------------------------- Spark
def test_spark_pilot_runs_units(stack):
    env, registry, session, pmgr, umgr = stack
    pilot, units = run_pilot_with_units(stack, "slurm://stampede", "spark",
                                        n_units=3,
                                        unit_kw={"function": lambda: "s"})
    assert pilot.agent_info["lrm"] == "spark"
    assert pilot.agent_info["lrm_setup_seconds"] > 10.0
    assert all(u.state is UnitState.DONE for u in units)
    assert units[0].result == "s"


def test_spark_teardown_stops_cluster(stack):
    env, registry, session, pmgr, umgr = stack
    pilot, units = run_pilot_with_units(stack, "slurm://stampede", "spark",
                                        n_units=1)
    pmgr.cancel_pilot(pilot.uid)
    env.run(pilot.wait())
    assert pilot.state is PilotState.CANCELED
