"""Tests for session profiling utilities."""

import pytest

from repro.api import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotState,
    UnitState,
)
from repro.core.profiler import (
    concurrency_series,
    core_utilization,
    peak_concurrency,
    phase_means,
    pilot_startup_breakdown,
    unit_phases,
)
from tests.core.test_units import fast_agent


@pytest.fixture()
def run_units(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent()))
    umgr.add_pilots(pilot)
    env.run(pilot.wait(PilotState.ACTIVE))
    units = umgr.submit_units([ComputeUnitDescription(
        cores=4, cpu_seconds=80.0) for _ in range(8)])  # 20s each, 4 fit
    env.run(umgr.wait_units(units))
    return env, pilot, units


def test_unit_phases_cover_pipeline(run_units):
    env, pilot, units = run_units
    phases = unit_phases(units[0])
    assert phases["execute"] > 15.0
    assert all(v is not None and v >= 0 for v in phases.values())


def test_phase_means(run_units):
    env, pilot, units = run_units
    means = phase_means(units)
    assert set(means) == {"queue", "stage_in", "schedule", "execute",
                          "stage_out"}
    assert means["execute"] == pytest.approx(20.0, rel=0.1)


def test_phase_means_partial_histories(stack):
    """Units stuck early in the pipeline: every phase label is still
    present, with None for phases no unit completed."""
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(bootstrap_seconds=1e6)))
    umgr.add_pilots(pilot)
    units = umgr.submit_units([ComputeUnitDescription(cores=1)
                               for _ in range(3)])
    env.run(until=10.0)  # agent never bootstraps; units wait in UMGR

    means = phase_means(units)
    assert set(means) == {"queue", "stage_in", "schedule", "execute",
                          "stage_out"}
    assert all(v is None for v in means.values())


def test_phase_means_empty_iterable():
    means = phase_means([])
    assert set(means) == {"queue", "stage_in", "schedule", "execute",
                          "stage_out"}
    assert all(v is None for v in means.values())


def test_pilot_startup_breakdown(run_units):
    env, pilot, units = run_units
    breakdown = pilot_startup_breakdown(pilot)
    assert breakdown["total"] == pytest.approx(
        breakdown["submit_to_launch"] + breakdown["queue_wait"]
        + breakdown["agent_bootstrap"], abs=1e-6)
    assert breakdown["agent_bootstrap"] > 0
    assert breakdown["lrm_setup"] == 0.0  # fork LRM


def test_concurrency_capped_by_cores(run_units):
    env, pilot, units = run_units
    # 8 units x 4 cores on a 16-core node: at most 4 concurrent
    assert peak_concurrency(units) == 4
    series = concurrency_series(units)
    assert all(count >= 0 for _, count in series)
    assert series[-1][1] == 0  # everything drained


def test_incomplete_unit_phases_none(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede", nodes=1, runtime=600,
        agent_config=fast_agent(bootstrap_seconds=1e6)))
    umgr.add_pilots(pilot)
    units = umgr.submit_units([ComputeUnitDescription(cores=1)])
    env.run(until=10.0)
    phases = unit_phases(units[0])
    assert phases["execute"] is None


def test_core_utilization_bounds(run_units):
    env, pilot, units = run_units
    wave_start = min(u.timestamp(UnitState.EXECUTING) for u in units)
    util = core_utilization(units, pilot, start=wave_start)
    assert 0.5 < util <= 1.0  # 4x4 cores busy of 16 during the waves


def test_core_utilization_degenerate_inputs():
    """Degenerate inputs return 0 rather than raising."""
    from repro.core.description import ComputePilotDescription
    from repro.core.pilot import ComputePilot
    from repro.sim import Environment
    env = Environment()
    pilot = ComputePilot(env, "p", ComputePilotDescription(
        resource="slurm://stampede"))
    assert core_utilization([], pilot) == 0.0
