"""Direct unit tests for the Local Resource Managers."""

import pytest

from repro.cluster import Machine, stampede
from repro.core.agent.lrm import (
    LRM_TYPES,
    make_lrm,
    nodes_from_environment,
    render_hadoop_configs,
)
from repro.core.description import AgentConfig
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment, SimulationError
from repro.yarn.config import YarnConfig


@pytest.fixture()
def site():
    env = Environment()
    registry = Registry()
    return env, registry.register(Site(env, stampede(num_nodes=3),
                                       rms_config=RmsConfig()))


def test_nodes_from_slurm_environment(site):
    env, site_ = site
    names = [n.name for n in site_.machine.nodes[:2]]
    from repro.rms.slurm import compress_nodelist
    nodes = nodes_from_environment(site_, {
        "SLURM_NODELIST": compress_nodelist(names)})
    assert [n.name for n in nodes] == names


def test_nodes_from_pbs_nodefile(site):
    env, site_ = site
    names = [n.name for n in site_.machine.nodes[:2]]
    nodefile = "\n".join(name for name in names for _ in range(16))
    nodes = nodes_from_environment(site_, {"PBS_NODEFILE": nodefile})
    assert [n.name for n in nodes] == names  # deduplicated, ordered


def test_nodes_from_pe_hostfile(site):
    env, site_ = site
    names = [n.name for n in site_.machine.nodes]
    hostfile = "\n".join(f"{n} 16 all.q@{n} UNDEFINED" for n in names)
    nodes = nodes_from_environment(site_, {"PE_HOSTFILE": hostfile})
    assert [n.name for n in nodes] == names


def test_unrecognized_environment_rejected(site):
    env, site_ = site
    with pytest.raises(SimulationError, match="RMS environment"):
        nodes_from_environment(site_, {"LSB_HOSTS": "a b"})


def test_make_lrm_kinds(site):
    env, site_ = site
    config = AgentConfig()
    for kind in ("fork", "yarn", "yarn-connect", "spark"):
        lrm = make_lrm(kind, env, site_, config)
        assert lrm.name == kind
    with pytest.raises(ValueError, match="unknown LRM"):
        make_lrm("mesos", env, site_, config)
    assert set(LRM_TYPES) == {"fork", "yarn", "yarn-connect", "spark"}


def test_render_hadoop_configs_contents():
    configs = render_hadoop_configs(["n0", "n1", "n2"], YarnConfig())
    assert set(configs) == {"core-site.xml", "hdfs-site.xml",
                            "yarn-site.xml", "mapred-site.xml",
                            "masters", "slaves"}
    assert "hdfs://n0:8020" in configs["core-site.xml"]
    assert configs["masters"] == "n0\n"
    assert configs["slaves"] == "n0\nn1\nn2\n"
    assert "yarn.resourcemanager.hostname" in configs["yarn-site.xml"]
    assert "<value>n0</value>" in configs["yarn-site.xml"]


def test_yarn_lrm_scales_config_with_cpu_speed(site):
    env, site_ = site
    base = YarnConfig(container_launch_seconds=12.0)
    lrm = make_lrm("yarn", env, site_,
                   AgentConfig(lrm="yarn", yarn_config=base))
    # stampede cpu_speed is 1.0: unchanged
    assert lrm.yarn_config.container_launch_seconds == 12.0


def test_fork_lrm_initialize_sets_nodes(site):
    env, site_ = site
    from repro.rms.slurm import compress_nodelist

    class FakeJob:
        env_vars = {"SLURM_NODELIST": compress_nodelist(
            [n.name for n in site_.machine.nodes[:2]])}

    lrm = make_lrm("fork", env, site_, AgentConfig())
    env.run(env.process(lrm.initialize(FakeJob())))
    assert lrm.total_cores == 32
    assert lrm.cores_per_node == 16
    assert lrm.setup_seconds == 0.0
