"""Scale-regime tests for the agent scheduler's heap-based placement.

The lazy-heap placement core (spread/pack) must reproduce the
documented semantics *exactly* at leadership-class machine sizes:

* spread — the node with the most free cores, first-constructed wins
  ties; multi-node requests greedily span the descending-free order;
* pack — nodes fill front-to-back in construction order, requests
  spanning across partially-free nodes.

These tests pin placements on a 1k-node Frontera template against a
brute-force reference model (the pre-heap linear-scan semantics), and
assert the sanitizer's conservation checks stay clean through churn
and node retirement.
"""

import random

import pytest

from repro.analysis.sanitizer import SimSanitizer
from repro.cluster import Machine
from repro.cluster.machine import frontera
from repro.core.agent.scheduler import ContinuousScheduler
from repro.sim import Environment

NODES = 1024
CORES = 56  # frontera cores/node


def make_scheduler(policy, num_nodes=NODES):
    env = Environment()
    machine = Machine(env, frontera(num_nodes=num_nodes))
    return env, machine, ContinuousScheduler(env, machine.nodes,
                                             policy=policy)


def grab(env, scheduler, cores):
    """Synchronously satisfiable allocate (capacity is never exceeded
    in these tests, so the event resolves within the drain)."""
    holder = {}

    def take():
        holder["alloc"] = yield scheduler.allocate(cores)

    env.run(env.process(take()))
    return holder["alloc"]


# ---------------------------------------------------------------- reference
class ReferenceScheduler:
    """The pre-heap linear-scan placement semantics, verbatim."""

    def __init__(self, names, cores_per_node, policy):
        self.order = list(names)          # construction order
        self.free = {n: cores_per_node for n in names}
        self.retired = set()
        self.policy = policy

    def place(self, cores):
        live = [n for n in self.order if n not in self.retired]
        if self.policy == "spread":
            best = max(live, key=lambda n: self.free[n])
            if self.free[best] >= cores:
                self.free[best] -= cores
                return [(best, cores)]
            scan = sorted(live, key=lambda n: -self.free[n])
        else:
            scan = live
        taken, remaining = [], cores
        for name in scan:
            if remaining == 0:
                break
            if self.free[name] <= 0:
                continue
            take = min(self.free[name], remaining)
            self.free[name] -= take
            remaining -= take
            taken.append((name, take))
        assert remaining == 0, "reference ran out of capacity"
        return taken

    def release(self, assignments):
        for name, cores in assignments:
            if name not in self.retired:
                self.free[name] += cores

    def deactivate(self, name):
        self.retired.add(name)
        self.free[name] = 0


# ----------------------------------------------------------- pinned shapes
def test_spread_pins_first_max_in_construction_order():
    env, machine, scheduler = make_scheduler("spread")
    # All nodes tie at 56 free: spread walks construction order.
    names = [grab(env, scheduler, 4).primary_node.name for _ in range(6)]
    assert names == [f"frontera-n{i:04d}" for i in range(6)]
    # Released cores make n0000 the unique max again.
    alloc7 = grab(env, scheduler, 4)
    assert alloc7.primary_node.name == "frontera-n0006"


def test_pack_fills_front_to_back_and_spans():
    env, machine, scheduler = make_scheduler("pack")
    first = [grab(env, scheduler, 28).primary_node.name for _ in range(4)]
    assert first == ["frontera-n0000", "frontera-n0000",
                     "frontera-n0001", "frontera-n0001"]
    # 100-core request spans nodes 2 and 3 (56 + 44).
    wide = grab(env, scheduler, 100)
    assert [(n.name, c) for n, c in wide.assignments] == [
        ("frontera-n0002", 56), ("frontera-n0003", 44)]


def test_spread_multi_node_spans_descending_free():
    env, machine, scheduler = make_scheduler("spread", num_nodes=4)
    grab(env, scheduler, 8)    # n0: 48 free
    grab(env, scheduler, 4)    # n1: 52 free
    # 200 cores > any node: greedy span over free-descending order
    # (n2/n3 at 56, then n1 at 52, then n0 for the remainder).
    wide = grab(env, scheduler, 200)
    assert [(n.name, c) for n, c in wide.assignments] == [
        ("frontera-n0002", 56), ("frontera-n0003", 56),
        ("frontera-n0001", 52), ("frontera-n0000", 36)]


# ----------------------------------------------------- differential churn
@pytest.mark.parametrize("policy", ["spread", "pack"])
@pytest.mark.parametrize("seed", [1, 7])
def test_churn_matches_reference_model(policy, seed):
    """Randomized allocate/release/retire churn on 1k nodes places
    identically to the brute-force reference scan."""
    env, machine, scheduler = make_scheduler(policy)
    reference = ReferenceScheduler(
        [n.name for n in machine.nodes], CORES, policy)
    rng = random.Random(seed)
    held = []          # (allocation, reference assignments)
    in_flight = 0
    for step in range(1500):
        action = rng.random()
        if action < 0.06 and held:
            allocation, ref_assignments = held.pop(
                rng.randrange(len(held)))
            scheduler.release(allocation)
            reference.release(ref_assignments)
            in_flight -= sum(c for _, c in ref_assignments)
        elif action < 0.08 and len(reference.retired) < 32:
            victim = rng.choice([n for n in scheduler.nodes])
            scheduler.deactivate_node(victim)
            reference.deactivate(victim.name)
        elif in_flight < 20_000:
            cores = rng.choice((1, 2, 4, 8, 28, 56, 120))
            allocation = grab(env, scheduler, cores)
            got = [(n.name, c) for n, c in allocation.assignments]
            assert got == reference.place(cores), f"step {step}"
            held.append((allocation, got))
            in_flight += cores
        else:  # drain pressure: release the oldest
            allocation, ref_assignments = held.pop(0)
            scheduler.release(allocation)
            reference.release(ref_assignments)
            in_flight -= sum(c for _, c in ref_assignments)
    # Conservation: the incremental ledgers agree with a full rescan.
    sanitizer = SimSanitizer(env)
    sanitizer.check_scheduler(scheduler)
    live_free = sum(reference.free[n.name] for n in scheduler.nodes)
    assert scheduler.free_cores == live_free


def test_sanitizer_clean_after_retirement_churn():
    """Accounting stays sanitizer-clean on a 1k-node template when
    nodes retire while their cores are held."""
    env, machine, scheduler = make_scheduler("spread")
    allocations = [grab(env, scheduler, 8) for _ in range(200)]
    # Retire 16 nodes, some of which hold live allocations.
    for node in list(scheduler.nodes[:16]):
        scheduler.deactivate_node(node)
    for allocation in allocations:
        scheduler.release(allocation)
    sanitizer = SimSanitizer(env)
    sanitizer.check_scheduler(scheduler)
    assert scheduler.free_cores == scheduler.total_cores
    assert scheduler.total_cores == (NODES - 16) * CORES
