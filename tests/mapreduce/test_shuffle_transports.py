"""Tests for the three shuffle transports (§II/§V related work)."""

import pytest

from repro.mapreduce import MapReduceJob, MRJobSpec
from tests.mapreduce.test_mapreduce import (
    EXPECTED,
    WORDS,
    collect_counts,
    load_words,
    make_stack,
    wordcount_spec,
)


def run_with_transport(transport):
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    spec = wordcount_spec()
    spec.shuffle_transport = transport
    job = MapReduceJob(env, spec, hdfs)
    output = env.run(env.process(job.run_inline()))
    return env, machine, job, output


@pytest.mark.parametrize("transport", ["local", "lustre", "rdma"])
def test_all_transports_correct(transport):
    env, machine, job, output = run_with_transport(transport)
    assert collect_counts(output) == EXPECTED


def test_invalid_transport_rejected():
    spec = wordcount_spec()
    spec.shuffle_transport = "carrier-pigeon"
    with pytest.raises(ValueError, match="shuffle transport"):
        spec.validate()


def test_lustre_transport_uses_shared_fs():
    env, machine, job, output = run_with_transport("lustre")
    assert machine.shared_fs.write_bytes > 0
    # shuffle space is reclaimed after the fetch
    assert machine.shared_fs.used == 0


def test_local_transport_uses_node_disks():
    env, machine, job, output = run_with_transport("local")
    spill = sum(n.local_disk.write_bytes for n in machine.nodes)
    assert spill > 0


def test_rdma_transport_skips_disks():
    env, machine, job, output = run_with_transport("rdma")
    # no spill anywhere: bytes only crossed the interconnect
    hdfs_writes = 0  # input was loaded before; count only deltas is
    # awkward, so compare against the local run instead
    env2, machine2, job2, _ = run_with_transport("local")
    spill_rdma = sum(n.local_disk.write_bytes for n in machine.nodes)
    spill_local = sum(n.local_disk.write_bytes for n in machine2.nodes)
    assert spill_rdma < spill_local


def test_rdma_faster_than_local_for_shuffle_heavy_job():
    """The HOMR/RDMA-shuffle claim: bypassing disks cuts job time."""
    times = {}
    for transport in ("local", "rdma"):
        env, machine, hdfs, yarn = make_stack()
        load_words(env, hdfs, WORDS)
        spec = wordcount_spec()
        spec.shuffle_transport = transport
        spec.bytes_per_pair = 50e6  # make the shuffle dominate
        job = MapReduceJob(env, spec, hdfs)
        t0 = env.now
        env.run(env.process(job.run_inline()))
        times[transport] = env.now - t0
    assert times["rdma"] < times["local"]
