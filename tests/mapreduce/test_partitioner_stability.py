"""Default partitioner stability across processes.

The seed's default partitioner used builtin ``hash``, which Python
salts per process for str/bytes (PYTHONHASHSEED) — the same job could
shuffle keys to different reducers in different pool workers, breaking
``jobs=N == jobs=1`` sweep determinism.  The default is now
:func:`repro.hashing.stable_hash` (crc32 of ``repr``), which must
assign every key the same partition in every process.
"""

import subprocess
import sys
from pathlib import Path

from repro.hashing import stable_hash
from repro.mapreduce import MRJobSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")

_CHILD = """
import json, sys
sys.path.insert(0, {src!r})
from repro.mapreduce import MRJobSpec
spec = MRJobSpec(name="t", input_path="/i", output_path="/o",
                 mapper=lambda r: [], reducer=lambda k, v: [],
                 num_reducers=7)
keys = [f"word-{{i}}" for i in range(50)] + [(1, "a"), 3, 2.5, None]
print(json.dumps([spec.partitioner(k, 7) for k in keys]))
"""


def _child_assignments(hashseed: str):
    out = subprocess.run(
        [sys.executable, "-c", _CHILD.format(src=SRC)],
        env={"PYTHONHASHSEED": hashseed, "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, check=True)
    return out.stdout.strip()


def test_default_partitioner_stable_across_hash_seeds():
    a = _child_assignments("1")
    b = _child_assignments("2")
    c = _child_assignments("random")
    assert a == b == c


def test_builtin_hash_is_salted_but_stable_hash_is_not():
    """The regression this guards against: builtin hash of a str
    differs between hash seeds; stable_hash never does."""
    probe = ("import json; print(json.dumps("
             "[hash('word-0'), __import__('zlib').crc32(b'word-0')]))")

    def run(seed):
        out = subprocess.run(
            [sys.executable, "-c", probe],
            env={"PYTHONHASHSEED": seed, "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, check=True)
        return out.stdout.strip()

    import json
    h1, crc1 = json.loads(run("1"))
    h2, crc2 = json.loads(run("2"))
    assert crc1 == crc2
    assert h1 != h2  # builtin hash is salted: why it can't partition


def test_stable_hash_distinguishes_types():
    """repr-based hashing keeps 1 and 1.0 apart (builtin hash does
    not), and handles unhashable-ish reprs of common key shapes."""
    assert stable_hash(1) != stable_hash(1.0)
    assert stable_hash("1") != stable_hash(1)
    assert stable_hash(("a", 1)) == stable_hash(("a", 1))
    assert 0 <= stable_hash("anything") < 2 ** 32


def test_spec_default_partitioner_uses_stable_hash():
    spec = MRJobSpec(name="t", input_path="/i", output_path="/o",
                     mapper=lambda r: [], reducer=lambda k, v: [])
    for key in ["alpha", 42, ("k", 3)]:
        assert spec.partitioner(key, 11) == stable_hash(key) % 11
