"""Tests for MapReduce task retry (MRAppMaster failure recovery)."""

import pytest

from repro.mapreduce import MapReduceJob
from tests.mapreduce.test_mapreduce import (
    EXPECTED,
    WORDS,
    collect_counts,
    load_words,
    make_stack,
    wordcount_spec,
)


class FlakyMapper:
    """Fails the first ``failures`` invocations, then behaves."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self, word):
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError("transient disk hiccup")
        return [(word, 1)]


def test_inline_retry_recovers_from_transient_failure():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    spec = wordcount_spec()
    flaky = FlakyMapper(failures=1)
    spec.mapper = flaky
    spec.max_task_attempts = 3
    job = MapReduceJob(env, spec, hdfs)
    output = env.run(env.process(job.run_inline()))
    # one map attempt failed and was retried; results still correct
    assert collect_counts(output) == EXPECTED


def test_inline_attempts_exhausted_raises():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    spec = wordcount_spec()

    def always_broken(word):
        raise OSError("dead disk")

    spec.mapper = always_broken
    spec.max_task_attempts = 2
    job = MapReduceJob(env, spec, hdfs)
    with pytest.raises(RuntimeError, match="failed 2 times"):
        env.run(env.process(job.run_inline()))


def test_yarn_retry_recovers_from_transient_failure():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    spec = wordcount_spec()
    flaky = FlakyMapper(failures=1)
    spec.mapper = flaky
    spec.max_task_attempts = 3
    job = MapReduceJob(env, spec, hdfs)
    output = env.run(env.process(job.run_on_yarn(yarn)))
    assert collect_counts(output) == EXPECTED
    # the retried attempt shows in the launch counter
    meta = hdfs.namenode.file_meta("/in/words")
    assert job.counters.maps_launched == len(meta.blocks) + 1


def test_yarn_attempts_exhausted_fails_application():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    spec = wordcount_spec()

    def always_broken(word):
        raise OSError("dead disk")

    spec.mapper = always_broken
    spec.max_task_attempts = 2
    job = MapReduceJob(env, spec, hdfs)
    with pytest.raises(RuntimeError, match="failed"):
        env.run(env.process(job.run_on_yarn(yarn)))
