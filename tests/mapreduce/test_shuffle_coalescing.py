"""Coalesced vs per-pair shuffle fetch equivalence.

``coalesce_shuffle=True`` (the default) batches the reduce-side fetch
into one disk read plus one fabric transfer per (map node -> reduce
node) pair; ``False`` keeps the seed's one-pair-of-events-per-map-task
path.  The batching is an I/O-schedule change only: job output, every
counter, and the total bytes shuffled must be identical.
"""

import pytest

from repro.mapreduce import MapReduceJob, MRJobSpec
from tests.mapreduce.test_mapreduce import (
    EXPECTED,
    WORDS,
    collect_counts,
    load_words,
    make_stack,
    wordcount_spec,
)


def run_wordcount(transport, coalesce, num_reducers=3):
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    spec = wordcount_spec()
    spec.shuffle_transport = transport
    spec.coalesce_shuffle = coalesce
    spec.num_reducers = num_reducers
    job = MapReduceJob(env, spec, hdfs)
    output = env.run(env.process(job.run_inline()))
    return job, output


@pytest.mark.parametrize("transport", ["local", "lustre", "rdma"])
def test_coalesced_matches_per_pair(transport):
    batched, out_batched = run_wordcount(transport, coalesce=True)
    per_pair, out_per_pair = run_wordcount(transport, coalesce=False)
    # Identical output down to record order within each partition.
    assert out_batched == out_per_pair
    assert collect_counts(out_batched) == EXPECTED
    # Identical counters, shuffle_bytes included: coalescing moves the
    # same bytes in fewer transfers.
    assert batched.counters == per_pair.counters
    assert batched.counters.shuffle_bytes > 0


def test_coalescing_reduces_simulated_shuffle_time():
    """One latency charge per (map node, reduce node) pair instead of
    one per map task: the simulated clock should not be slower."""
    times = {}
    for coalesce in (True, False):
        env, machine, hdfs, yarn = make_stack()
        load_words(env, hdfs, WORDS)
        spec = wordcount_spec()
        spec.coalesce_shuffle = coalesce
        spec.num_reducers = 3
        job = MapReduceJob(env, spec, hdfs)
        env.run(env.process(job.run_inline()))
        times[coalesce] = env.now
    assert times[True] <= times[False]
