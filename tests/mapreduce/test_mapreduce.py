"""Tests for the MapReduce engine (inline and on YARN)."""

import pytest

from repro.cluster import Machine, stampede
from repro.cluster.storage import MB
from repro.hdfs import HdfsCluster
from repro.mapreduce import MapReduceJob, MRJobSpec
from repro.sim import Environment, SeedSequenceRegistry
from repro.yarn import YarnCluster, YarnConfig


def make_stack(num_nodes=3, block_size=8 * MB):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       block_size=block_size,
                       rng=SeedSequenceRegistry(11).stream("mr"))
    yarn = YarnCluster(env, machine, machine.nodes, config=YarnConfig())

    def boot():
        yield env.process(hdfs.start())
        yield env.process(yarn.start())

    env.run(env.process(boot()))
    return env, machine, hdfs, yarn


def load_words(env, hdfs, words, blocks=3):
    """Write a word list to HDFS split across `blocks` blocks."""
    per = max(1, (len(words) + blocks - 1) // blocks)
    slices = [words[i * per:(i + 1) * per] for i in range(blocks)]
    slices = [s for s in slices if s]
    nbytes = len(slices) * 8 * MB - 1  # spans len(slices) blocks of 8MB
    client = hdfs.client(hdfs.master_node.name)

    def put():
        yield env.process(client.put("/in/words", nbytes,
                                     payload_slices=slices))

    env.run(env.process(put()))


def wordcount_spec(num_reducers=2):
    return MRJobSpec(
        name="wordcount",
        input_path="/in/words",
        output_path="/out/wc",
        mapper=lambda word: [(word, 1)],
        reducer=lambda word, counts: [(word, sum(counts))],
        num_reducers=num_reducers,
        partitioner=lambda key, n: sum(key.encode()) % n,
    )


WORDS = ["apple", "banana", "apple", "cherry", "banana", "apple",
         "durian", "cherry", "apple", "banana"]
EXPECTED = {"apple": 4, "banana": 3, "cherry": 2, "durian": 1}


def collect_counts(output):
    counts = {}
    for partition_results in output.values():
        for word, count in partition_results:
            counts[word] = count
    return counts


def test_wordcount_inline_correct():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    output = env.run(env.process(job.run_inline()))
    assert collect_counts(output) == EXPECTED


def test_wordcount_on_yarn_correct():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    output = env.run(env.process(job.run_on_yarn(yarn)))
    assert collect_counts(output) == EXPECTED


def test_yarn_and_inline_agree():
    for runner in ("inline", "yarn"):
        env, machine, hdfs, yarn = make_stack()
        load_words(env, hdfs, WORDS)
        job = MapReduceJob(env, wordcount_spec(), hdfs)
        if runner == "inline":
            output = env.run(env.process(job.run_inline()))
        else:
            output = env.run(env.process(job.run_on_yarn(yarn)))
        assert collect_counts(output) == EXPECTED


def test_one_map_task_per_block():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS, blocks=3)
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    env.run(env.process(job.run_inline()))
    meta = hdfs.namenode.file_meta("/in/words")
    assert job.counters.maps_launched == len(meta.blocks)


def test_counters_accounting():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    env.run(env.process(job.run_inline()))
    c = job.counters
    assert c.map_input_records == len(WORDS)
    assert c.map_output_records == len(WORDS)
    assert c.reduce_output_records == len(EXPECTED)
    assert c.reduce_input_groups == len(EXPECTED)
    assert c.shuffle_bytes > 0


def test_combiner_reduces_shuffle():
    env1, _, hdfs1, _ = make_stack()
    load_words(env1, hdfs1, WORDS)
    plain = MapReduceJob(env1, wordcount_spec(), hdfs1)
    env1.run(env1.process(plain.run_inline()))

    env2, _, hdfs2, _ = make_stack()
    load_words(env2, hdfs2, WORDS)
    spec = wordcount_spec()
    spec.combiner = lambda word, counts: [sum(counts)]
    combined = MapReduceJob(env2, spec, hdfs2)
    output = env2.run(env2.process(combined.run_inline()))

    assert collect_counts(output) == EXPECTED
    assert combined.counters.shuffle_bytes < plain.counters.shuffle_bytes


def test_output_written_to_hdfs():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    job = MapReduceJob(env, wordcount_spec(num_reducers=2), hdfs)
    env.run(env.process(job.run_inline()))
    files = hdfs.namenode.list_files("/out/wc")
    assert files == ["/out/wc/part-r-00000", "/out/wc/part-r-00001"]


def test_data_local_maps_counted():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, WORDS)
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    env.run(env.process(job.run_inline()))
    # inline runner places maps on a replica holder: all local
    assert job.counters.data_local_maps == job.counters.maps_launched


def test_yarn_locality_preference_mostly_local():
    env, machine, hdfs, yarn = make_stack(num_nodes=3)
    load_words(env, hdfs, WORDS, blocks=3)
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    env.run(env.process(job.run_on_yarn(yarn)))
    assert job.counters.data_local_maps >= 1


def test_map_cpu_cost_extends_runtime():
    env1, _, hdfs1, _ = make_stack()
    load_words(env1, hdfs1, WORDS)
    fast = MapReduceJob(env1, wordcount_spec(), hdfs1)
    env1.run(env1.process(fast.run_inline()))
    t_fast = env1.now

    env2, _, hdfs2, _ = make_stack()
    load_words(env2, hdfs2, WORDS)
    spec = wordcount_spec()
    spec.map_cpu_per_record = 5.0
    slow = MapReduceJob(env2, spec, hdfs2)
    env2.run(env2.process(slow.run_inline()))
    assert env2.now > t_fast + 4.0


def test_more_reducers_than_keys_gives_empty_partitions():
    env, machine, hdfs, yarn = make_stack()
    load_words(env, hdfs, ["only"], blocks=1)
    job = MapReduceJob(env, wordcount_spec(num_reducers=4), hdfs)
    output = env.run(env.process(job.run_inline()))
    non_empty = [p for p, rows in output.items() if rows]
    assert len(non_empty) == 1
    assert collect_counts(output) == {"only": 1}


def test_invalid_spec_rejected():
    with pytest.raises(ValueError):
        MRJobSpec(name="x", input_path="/i", output_path="/o",
                  mapper=lambda r: [], reducer=lambda k, v: [],
                  num_reducers=0).validate()


def test_missing_input_raises():
    env, machine, hdfs, yarn = make_stack()
    job = MapReduceJob(env, wordcount_spec(), hdfs)
    with pytest.raises(FileNotFoundError):
        env.run(env.process(job.run_inline()))
