"""Shared fixtures for RADICAL-Pilot core tests."""

import pytest

from repro.cluster import stampede, wrangler
from repro.api import PilotManager, Session, UnitManager
from repro.rms import RmsConfig
from repro.saga import Registry, Site
from repro.sim import Environment

#: Fast batch system for tests that don't measure startup times.
FAST_RMS = RmsConfig(submit_latency=0.2, schedule_interval=0.5,
                     prolog_seconds=0.5, epilog_seconds=0.2)


@pytest.fixture()
def stack():
    """(env, registry, session, pmgr, umgr) on a 3-node Stampede."""
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=3),
                           rms_config=FAST_RMS))
    registry.register(Site(env, wrangler(num_nodes=3),
                           rms_config=FAST_RMS, hostname="wrangler"))
    session = Session(env, registry)
    pmgr = PilotManager(session)
    umgr = UnitManager(session)
    return env, registry, session, pmgr, umgr
