"""Raptor x repro.faults: worker crashes, retries, restart policies."""

import pytest

from repro.api import RaptorConfig, RestartPolicy, TaskDescription
from tests.core.test_units import active_pilot


def overlay_on(stack, workers=8, nodes=3, cores_per_worker=5, **kw):
    """An overlay whose workers provably span several nodes.

    The test agent packs units first-fit, so 1-core workers would all
    land next to the master; 5-core workers on 16-core nodes force the
    fleet across all three nodes (3 + 3 + 2), guaranteeing a worker
    node that does not host the master.
    """
    env, registry, session, pmgr, umgr = stack
    pilot = active_pilot(env, pmgr, umgr, nodes=nodes)
    overlay = session.raptor(pilot, workers=workers,
                             cores_per_worker=cores_per_worker, **kw)
    env.run(overlay.ready())
    return env, session, overlay


def _victim(overlay):
    """First worker node (sorted) that does not host the master."""
    master_node = overlay.master.node.name
    return sorted({w.node.name for w in overlay.master.workers
                   if w.node.name != master_node})[0]


def test_worker_crash_retries_inflight_tasks(stack):
    env, session, overlay = overlay_on(stack)
    t0 = env.now
    session.faults.node_crash(at=t0 + 0.5, node=_victim(overlay),
                              duration=1000.0)
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=0.4)] * 60)
    env.run(overlay.wait(futures))
    stats = overlay.stats()
    assert stats["workers_lost"] > 0
    assert stats["tasks_retried"] > 0
    assert stats["tasks_completed"] == 60
    assert all(f.result().ok for f in futures)
    # retried envelopes record more than one attempt
    assert max(f.result().attempts for f in futures) > 1


def test_restart_policy_brings_replacement_workers(stack):
    env, session, overlay = overlay_on(
        stack, restart_policy=RestartPolicy(max_restarts=2, backoff=0.5))
    before = len(overlay.master.workers)
    t0 = env.now
    session.faults.node_crash(at=t0 + 0.5, node=_victim(overlay),
                              duration=2.0)
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=0.3)] * 80)
    env.run(overlay.wait(futures))
    assert all(f.result().ok for f in futures)
    # give the restarted worker CUs time to finish re-registering
    env.run(env.timeout(30.0))
    stats = overlay.stats()
    lost = stats["workers_lost"]
    assert lost > 0
    # replacements re-registered: total registrations exceed the fleet
    assert stats["workers_registered"] > before
    # a crashed node retires from the pilot's allocation for good, so
    # the fleet only recovers up to the surviving capacity — but it
    # must recover beyond the bare survivors
    assert before - lost < len(overlay.master.workers) <= before


def test_task_retries_exhaust_to_failed_envelope(stack):
    env, session, overlay = overlay_on(
        stack, config=RaptorConfig(task_retries=0))
    master_node = overlay.master.node.name
    victims = sorted({w.node.name for w in overlay.master.workers
                      if w.node.name != master_node})
    assert victims, "no worker node without the master to crash"
    t0 = env.now
    for name in victims:
        session.faults.node_crash(at=t0 + 0.5, node=name,
                                  duration=1000.0)
    # saturate the fleet so every worker — victims included — holds
    # in-flight tasks at crash time; with task_retries=0 one lost
    # attempt is terminal, while survivors' tasks still complete
    capacity = sum(w.cores for w in overlay.master.workers)
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=5.0)] * capacity)
    env.run(overlay.wait(futures))
    settled = [f.result() for f in futures]
    failed = [r for r in settled if not r.ok]
    assert failed and any(r.ok for r in settled)
    assert all("lost worker" in r.error for r in failed)
    assert all(r.attempts == 1 for r in failed)


def test_master_node_death_fails_overlay(stack):
    env, session, overlay = overlay_on(stack)
    t0 = env.now
    session.faults.node_crash(at=t0 + 0.5,
                              node=overlay.master.node.name,
                              duration=1000.0)
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=30.0)] * 10)
    env.run(env.all_of([f.wait() for f in futures]))
    assert overlay.master.failed
    settled = [f.result() for f in futures]
    assert all(not r.ok for r in settled)
    assert all("died" in r.error for r in settled)
    # the master CU itself failed through the normal unit pipeline
    env.run(env.timeout(60.0))
    assert overlay.master_unit.state.value == "Failed"
    with pytest.raises(RuntimeError, match="closed"):
        overlay.submit_tasks([TaskDescription()])


def test_unit_error_fault_composes_with_worker_restart(stack):
    """A transient unit_error on a worker CU + RestartPolicy: the CU
    fails, the restarted attempt registers a fresh worker."""
    env, registry, session, pmgr, umgr = stack
    pilot = active_pilot(env, pmgr, umgr)
    overlay = session.raptor(
        pilot, workers=4,
        restart_policy=RestartPolicy(max_restarts=2, backoff=0.5),
        start=False)
    # poison the first worker CU before it is submitted
    overlay.start()
    session.faults.unit_error(overlay.worker_units[0].uid, times=1)
    env.run(overlay.ready())
    assert len(overlay.master.workers) == 4
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=0.1)] * 12)
    env.run(overlay.wait(futures))
    assert all(f.result().ok for f in futures)
