"""The raptor task protocol: descriptions, envelopes, futures."""

import pytest

from repro.api import (
    DescriptionError,
    RaptorConfig,
    TaskDescription,
    TaskFuture,
    TaskResult,
)
from repro.sim import Environment


def test_task_description_defaults_validate():
    desc = TaskDescription().validate()
    assert desc.cores == 1 and desc.cpu_seconds == 0.0
    assert desc.payload_bytes is None and desc.result_bytes is None


@pytest.mark.parametrize("bad", [
    dict(cores=0),
    dict(cpu_seconds=-1.0),
    dict(payload_bytes=-1.0),
    dict(result_bytes=-0.5),
])
def test_task_description_rejects_bad_values(bad):
    with pytest.raises(DescriptionError):
        TaskDescription(**bad).validate()


def test_task_description_from_dict_rejects_unknown_fields():
    with pytest.raises(DescriptionError, match="unknown"):
        TaskDescription.from_dict({"executable": "/bin/true"})


def test_raptor_config_validation():
    RaptorConfig().validate()
    with pytest.raises(DescriptionError):
        RaptorConfig(dispatch_overhead_seconds=-1.0).validate()
    with pytest.raises(DescriptionError):
        RaptorConfig(task_retries=-1).validate()
    with pytest.raises(DescriptionError):
        RaptorConfig(task_wire_bytes=-1.0).validate()
    with pytest.raises(DescriptionError):
        RaptorConfig(submit_latency=-0.1).validate()


def test_task_result_latency():
    envelope = TaskResult(tid=1, ok=True, result=7, submitted_at=2.0,
                          started_at=3.0, finished_at=5.5)
    assert envelope.latency == 3.5
    assert envelope.ok and envelope.result == 7


def test_task_future_lifecycle():
    env = Environment()
    future = TaskFuture(env, tid=3, description=TaskDescription())
    assert not future.done
    with pytest.raises(RuntimeError, match="in flight"):
        future.result()
    envelope = TaskResult(tid=3, ok=True, result="x", finished_at=1.0)
    future._resolve(envelope)
    assert future.done
    assert future.result() is envelope
    # double-resolve is a no-op: the first envelope wins
    future._resolve(TaskResult(tid=3, ok=False, error="late"))
    assert future.result() is envelope


def test_unit_description_service_is_exclusive_with_function():
    from repro.api import ComputeUnitDescription

    def service(ctx):
        yield None

    ComputeUnitDescription(service=service).validate()
    with pytest.raises(DescriptionError, match="service or a function"):
        ComputeUnitDescription(service=service,
                               function=lambda: 1).validate()
