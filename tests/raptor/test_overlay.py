"""RaptorOverlay end-to-end: ready, stream, wait, close, telemetry."""

import pytest

from repro.api import RaptorConfig, TaskDescription
from tests.core.test_units import active_pilot


def overlay_on(stack, workers=6, **kw):
    env, registry, session, pmgr, umgr = stack
    pilot = active_pilot(env, pmgr, umgr)
    overlay = session.raptor(pilot, workers=workers, **kw)
    env.run(overlay.ready())
    return env, session, overlay


def test_session_raptor_builds_started_overlay(stack):
    env, session, overlay = overlay_on(stack)
    assert overlay.master.ready
    assert len(overlay.master.workers) == 6
    assert overlay.master_unit is not None
    assert len(overlay.worker_units) == 6
    stats = overlay.stats()
    assert stats["workers_registered"] == 6
    assert stats["tasks_submitted"] == 0


def test_task_stream_with_futures(stack):
    env, session, overlay = overlay_on(stack)
    futures = overlay.submit_tasks([
        TaskDescription(function=lambda i=i: i * 2, cpu_seconds=0.05,
                        name=f"t{i}")
        for i in range(40)])
    assert len(futures) == 40
    env.run(overlay.wait(futures))
    values = [f.result() for f in futures]
    assert all(v.ok for v in values)
    assert [v.result for v in values] == [i * 2 for i in range(40)]
    # every envelope names the worker that served it
    assert all(v.worker.startswith("rworker.") for v in values)
    stats = overlay.stats()
    assert stats["tasks_completed"] == 40
    assert stats["tasks_failed"] == 0


def test_results_retained_in_completion_order(stack):
    env, session, overlay = overlay_on(stack)
    futures = overlay.submit_tasks([
        TaskDescription(cpu_seconds=0.1) for _ in range(20)])
    env.run(overlay.wait(futures))
    finished = [r.finished_at for r in overlay.results]
    assert len(finished) == 20
    assert finished == sorted(finished)


def test_wait_without_futures_uses_counters(stack):
    env, session, overlay = overlay_on(
        stack, config=RaptorConfig(retain_results=False))
    handles = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=0.05)] * 100, futures=False)
    assert handles is None
    env.run(overlay.wait())
    assert overlay.stats()["tasks_completed"] == 100
    assert overlay.results == []          # retain_results off


def test_task_payload_exception_fails_only_that_task(stack):
    env, session, overlay = overlay_on(stack)

    def boom():
        raise RuntimeError("payload bug")

    futures = overlay.submit_tasks([
        TaskDescription(function=boom),
        TaskDescription(function=lambda: 42),
    ])
    env.run(overlay.wait(futures))
    assert not futures[0].result().ok
    assert "payload bug" in futures[0].result().error
    assert futures[1].result().ok and futures[1].result().result == 42


def test_close_drains_outstanding_tasks(stack):
    env, session, overlay = overlay_on(stack)
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=0.5)] * 30)
    done = overlay.close(drain=True)
    env.run(done)
    assert all(f.result().ok for f in futures)
    assert overlay.master.closed and not overlay.master.failed
    # clean shutdown: master and every worker CU completed
    assert overlay.master_unit.state.value == "Done"
    for unit in overlay.worker_units:
        final = overlay._worker_umgr.final_unit(unit)
        assert final.state.value == "Done"


def test_close_without_drain_fails_outstanding_futures(stack):
    env, session, overlay = overlay_on(stack)
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=60.0)] * 20)
    env.run(overlay.close(drain=False))
    settled = [f.result() for f in futures]
    assert any(not r.ok for r in settled)
    assert all("closed" in r.error for r in settled if not r.ok)


def test_submit_after_close_raises(stack):
    env, session, overlay = overlay_on(stack)
    env.run(overlay.close())
    with pytest.raises(RuntimeError, match="closed"):
        overlay.submit_tasks([TaskDescription()])


def test_submission_latency_is_modeled(stack):
    env, session, overlay = overlay_on(
        stack, config=RaptorConfig(submit_latency=1.5,
                                   dispatch_overhead_seconds=0.0))
    t0 = env.now
    futures = overlay.submit_tasks([TaskDescription()])
    env.run(overlay.wait(futures))
    # one client->master latency plus wire time; no compute
    assert env.now - t0 >= 1.5


def test_wide_task_capped_at_worker_budget(stack):
    env, session, overlay = overlay_on(stack, workers=4,
                                       cores_per_worker=2)
    futures = overlay.submit_tasks([
        TaskDescription(cores=8, cpu_seconds=1.0)])
    env.run(overlay.wait(futures))
    assert futures[0].result().ok


def test_overlay_telemetry_counters_and_latency(stack):
    env, registry, session, pmgr, umgr = stack
    telemetry = session.telemetry           # install before the run
    pilot = active_pilot(env, pmgr, umgr)
    overlay = session.raptor(pilot, workers=6)
    env.run(overlay.ready())
    futures = overlay.submit_tasks(
        [TaskDescription(cpu_seconds=0.05)] * 25)
    env.run(overlay.wait(futures))
    assert telemetry.counter("raptor.tasks_submitted").total == 25
    assert telemetry.counter("raptor.tasks_completed").total == 25
    assert telemetry.counter("raptor.workers_registered").total == 6
    hist = telemetry.histogram("raptor.task_latency")
    assert hist.count == 25 and hist.min > 0


def test_overlay_rejects_bad_shapes(stack):
    env, registry, session, pmgr, umgr = stack
    pilot = active_pilot(env, pmgr, umgr)
    with pytest.raises(ValueError, match="worker"):
        session.raptor(pilot, workers=0)


def test_same_seed_same_schedule(stack):
    """The overlay is deterministic: identical runs, identical times."""

    def one_run():
        from repro.api import PilotManager, Session, UnitManager
        from repro.cluster import stampede
        from repro.saga import Registry, Site
        from repro.sim import Environment
        from tests.conftest import FAST_RMS

        env = Environment()
        registry = Registry()
        registry.register(Site(env, stampede(num_nodes=3),
                               rms_config=FAST_RMS))
        session = Session(env, registry)
        pilot = active_pilot(env, PilotManager(session),
                             UnitManager(session))
        overlay = session.raptor(pilot, workers=6)
        env.run(overlay.ready())
        futures = overlay.submit_tasks(
            [TaskDescription(cpu_seconds=0.07)] * 50)
        env.run(overlay.wait(futures))
        return [(f.result().tid, f.result().worker,
                 f.result().finished_at) for f in futures]

    assert one_run() == one_run()
