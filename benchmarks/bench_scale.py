"""Weak-scaling benchmarks: leadership-class sizes, committed curve.

The paper's testbeds stop at a handful of nodes; these probes push the
same simulation stack to leadership-class sizes (Frontera template,
1k-10k nodes) and a million-task workload, and commit the resulting
curve as ``BENCH_scale.json`` so scale regressions are visible from PR
to PR.

Per machine size ``N`` in 1024 / 4096 / 10240 nodes:

* ``sched_spread_alloc_release_per_sec@N`` and
  ``sched_pack_alloc_release_per_sec@N`` — steady-state FIFO
  allocate/release churn through a :class:`ContinuousScheduler` held at
  ~50% core occupancy (the agent hot path of a saturated pilot).  The
  lazy-heap placement makes this O(log N) per cycle, so the curve
  should stay *flat* as N grows — that flatness is what the committed
  baseline pins.
* ``heartbeat_events_per_sec@N`` — N concurrent periodic processes
  (one per simulated node, the NM-heartbeat shape) beating through the
  event loop with slot sleeps: event throughput with an N-deep heap.

Fixed large scenarios (run once per invocation, not best-of):

* ``units_100k_per_sec_wall`` / ``units_100k_wall_seconds`` — 100k
  Compute-Units through the full per-unit path (UnitManager, DB hop,
  agent scheduler, executor) on a warm 64-node Frontera pilot.
* ``raptor_1m_tasks_per_sec_wall`` / ``raptor_1m_wall_seconds`` — one
  million tasks through a raptor overlay with 2047 workers on a
  1024-node Frontera pilot: the paper's "many small tasks" regime at
  leadership scale.

Run standalone to (re)write the committed ``BENCH_scale.json``
baseline (takes a few minutes; the two large scenarios dominate)::

    PYTHONPATH=src python benchmarks/bench_scale.py [--rounds N] [--out FILE]

CI runs only the smallest size, skipping the large scenarios::

    PYTHONPATH=src python benchmarks/bench_scale.py --rounds 1 \
        --sizes 1024 --skip-units --check BENCH_scale.json --tolerance 0.30

or under pytest (cut-down sizes, sanity asserts only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q

Numbers are machine-dependent; the baseline exists to make *relative*
movement visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import sys
import time
from collections import deque
from pathlib import Path

try:
    from benchmarks._harness import bench_main, run_rounds
except ImportError:  # standalone: python benchmarks/bench_scale.py
    from _harness import bench_main, run_rounds

from repro.cluster.machine import frontera
from repro.cluster.node import Node
from repro.core.agent.scheduler import ContinuousScheduler
from repro.sim.engine import Environment

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_scale.json"

#: Weak-scaling machine sizes (Frontera nodes).
SIZES = (1024, 4096, 10240)

#: Keys where smaller numbers are better (wall times).
LOWER_IS_BETTER = ("units_100k_wall_seconds", "raptor_1m_wall_seconds")


# ------------------------------------------------------- scheduler churn
def _scale_nodes(env: Environment, num_nodes: int):
    spec = frontera(num_nodes=num_nodes)
    return [Node(env, f"scale-{i:05d}", spec.cores_per_node,
                 spec.memory_per_node, spec.local_disk,
                 cpu_speed=spec.cpu_speed)
            for i in range(num_nodes)]


def bench_sched_churn(num_nodes: int, policy: str = "spread",
                      n_cycles: int = 20_000,
                      alloc_cores: int = 4) -> float:
    """Steady-state allocate/release cycles/sec at ~50% occupancy.

    The scheduler is first filled to half the machine's cores with
    4-core allocations, then measured over ``n_cycles`` FIFO cycles
    (allocate one, release the oldest) — the regime a saturated pilot
    agent lives in, where the pre-heap linear scans were O(N) per
    cycle.
    """
    env = Environment()
    nodes = _scale_nodes(env, num_nodes)
    scheduler = ContinuousScheduler(env, nodes, policy=policy)
    fill = num_nodes * nodes[0].num_cores // 2 // alloc_cores
    held = deque()
    timing = {}

    def driver():
        for _ in range(fill):
            allocation = yield scheduler.allocate(alloc_cores)
            held.append(allocation)
        t0 = time.perf_counter()
        for _ in range(n_cycles):
            allocation = yield scheduler.allocate(alloc_cores)
            held.append(allocation)
            scheduler.release(held.popleft())
        timing["elapsed"] = time.perf_counter() - t0

    env.process(driver())
    env.run()
    return n_cycles / timing["elapsed"]


# ------------------------------------------------------- event heartbeat
def bench_heartbeat_events(num_procs: int,
                           total_events: int = 400_000) -> float:
    """Events/sec with ``num_procs`` concurrent periodic processes.

    One slot-sleeping process per simulated node (the NM-heartbeat
    shape): weak-scales the event-heap depth with the machine size
    while total event count stays fixed.
    """
    beats = max(4, total_events // num_procs)

    env = Environment()

    def heartbeat():
        for _ in range(beats):
            yield 1.0

    for _ in range(num_procs):
        env.process(heartbeat())
    total = beats * num_procs
    t0 = time.perf_counter()
    env.run()
    return total / (time.perf_counter() - t0)


# ------------------------------------------------- per-unit path at 100k
def bench_units_per_unit(n_units: int = 100_000, num_nodes: int = 72,
                         pilot_nodes: int = 64):
    """(units/sec wall, wall seconds) for ``n_units`` Compute-Units
    through the full per-unit path on a warm Frontera pilot."""
    from repro.api import ComputeUnitDescription
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed("frontera", num_nodes=num_nodes, seed=42)
    testbed.start_pilot(nodes=pilot_nodes,
                        agent_config=agent_config("fork"))
    description = ComputeUnitDescription(
        executable="/bin/true", cores=1, cpu_seconds=0.05, memory_mb=128)
    t0 = time.perf_counter()
    units = testbed.umgr.submit_units([description] * n_units)
    testbed.env.run(testbed.umgr.wait_units(units))
    elapsed = time.perf_counter() - t0
    done = sum(1 for u in units if u.state.value == "Done")
    assert done == n_units, f"only {done}/{n_units} units Done"
    return n_units / elapsed, elapsed


# ------------------------------------------------- raptor overlay at 1M
def bench_raptor_scale(n_tasks: int = 1_000_000, num_nodes: int = 1100,
                       pilot_nodes: int = 1024, workers: int = 2047):
    """(tasks/sec wall, wall seconds) for ``n_tasks`` through a raptor
    overlay at leadership scale (defaults: 2047 workers, 1024-node
    pilot)."""
    from repro.api import RaptorConfig, TaskDescription
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed("frontera", num_nodes=num_nodes, seed=42)
    pilot, _, _ = testbed.start_pilot(nodes=pilot_nodes,
                                      agent_config=agent_config("fork"))
    overlay = testbed.session.raptor(
        pilot, workers=workers, config=RaptorConfig(retain_results=False))
    testbed.env.run(overlay.ready())
    task = TaskDescription(cpu_seconds=0.05)
    t0 = time.perf_counter()
    overlay.submit_tasks([task] * n_tasks, futures=False)
    testbed.env.run(overlay.wait())
    elapsed = time.perf_counter() - t0
    stats = overlay.stats()
    assert stats["tasks_completed"] == n_tasks, stats
    return n_tasks / elapsed, elapsed


# ----------------------------------------------------------------- driver
def run_benchmarks(rounds: int = 1, sizes=SIZES,
                   include_units: bool = True) -> dict:
    """Best-of-``rounds`` per-size probes plus (once) the two fixed
    large scenarios."""
    probes = {}
    for size in sizes:
        probes[f"sched_spread_alloc_release_per_sec@{size}"] = (
            (lambda n=size: bench_sched_churn(n, "spread")), "max")
        probes[f"sched_pack_alloc_release_per_sec@{size}"] = (
            (lambda n=size: bench_sched_churn(n, "pack")), "max")
        probes[f"heartbeat_events_per_sec@{size}"] = (
            (lambda n=size: bench_heartbeat_events(n)), "max")
    results = run_rounds(probes, rounds)
    if include_units:
        per_sec, wall = bench_units_per_unit()
        results["units_100k_per_sec_wall"] = per_sec
        results["units_100k_wall_seconds"] = wall
        per_sec, wall = bench_raptor_scale()
        results["raptor_1m_tasks_per_sec_wall"] = per_sec
        results["raptor_1m_wall_seconds"] = wall
    return results


def _report(results: dict) -> None:
    for key in sorted(k for k in results if "@" in k):
        print(f"{key:<44} {results[key]:>12,.0f} /sec")
    for key in ("units_100k_per_sec_wall", "raptor_1m_tasks_per_sec_wall"):
        if key in results:
            print(f"{key:<44} {results[key]:>12,.0f} /sec")
    for key in LOWER_IS_BETTER:
        if key in results:
            print(f"{key:<44} {results[key]:>12,.1f} s")


# --------------------------------------------------------------- pytest
def test_scale_benchmarks_smoke():
    """Cut-down versions of every probe; catches runtime breakage."""
    sched = bench_sched_churn(128, "spread", n_cycles=2_000)
    pack = bench_sched_churn(128, "pack", n_cycles=2_000)
    beats = bench_heartbeat_events(128, total_events=20_000)
    units_rate, units_wall = bench_units_per_unit(
        n_units=500, num_nodes=8, pilot_nodes=4)
    raptor_rate, raptor_wall = bench_raptor_scale(
        n_tasks=1_000, num_nodes=6, pilot_nodes=4, workers=63)
    assert sched > 0 and pack > 0 and beats > 0
    assert units_rate > 0 and units_wall > 0
    assert raptor_rate > 0 and raptor_wall > 0


def _extra_args(parser) -> None:
    parser.add_argument(
        "--sizes", default=None, metavar="N[,N...]",
        help="comma-separated machine sizes (default: all of "
             f"{','.join(str(s) for s in SIZES)})")
    parser.add_argument(
        "--skip-units", action="store_true",
        help="skip the 100k-unit and 1M-task scenarios (CI smoke)")


def _run_kwargs(args) -> dict:
    sizes = SIZES if args.sizes is None else tuple(
        int(s) for s in args.sizes.split(","))
    return {"sizes": sizes, "include_units": not args.skip_units}


def main(argv=None) -> int:
    return bench_main(
        argv,
        description="weak-scaling benchmarks; writes the JSON baseline",
        baseline_path=BASELINE_PATH,
        run=run_benchmarks,
        report=_report,
        lower_is_better=LOWER_IS_BETTER,
        allow_missing=True,
        default_rounds=1,
        extra_args=_extra_args,
        run_kwargs=_run_kwargs)


if __name__ == "__main__":
    sys.exit(main())
