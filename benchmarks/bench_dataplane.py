"""Data-plane microbenchmarks: pipe churn, MR shuffle, Spark shuffle.

Three probes, smallest to largest:

* ``pipe_churn_per_sec`` — transfer churn through one
  :class:`SharedBandwidthPipe` at 1/10/100/1000 concurrent streams with
  staggered sizes, so every completion is a state change (the contended
  burst pattern of the paper's §V Lustre-shuffle comparison).
* ``mr_shuffle_records_per_sec`` — end-to-end inline MapReduce
  wordcount over HDFS (map, spill, shuffle fetch, reduce, output
  write): the whole MR data plane in wall-clock terms.
* ``spark_rbk_records_per_sec`` — ``reduce_by_key`` over a Spark
  standalone cluster: shuffle map stage, bucketed writes, coalesced
  fetches, combiner merge.

Run standalone to (re)write the committed ``BENCH_dataplane.json``
baseline::

    PYTHONPATH=src python benchmarks/bench_dataplane.py [--rounds N] [--out FILE]

check mode (used by CI; exits non-zero on a >``--tolerance`` regression
against the committed baseline, same scheme as ``BENCH_kernel.json``)::

    PYTHONPATH=src python benchmarks/bench_dataplane.py --rounds 1 \
        --check BENCH_dataplane.json --tolerance 0.30

or under pytest (one quick round, sanity asserts only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_dataplane.py -q

Numbers are machine-dependent; the baseline exists to make *relative*
movement visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

try:
    from benchmarks._harness import bench_main, run_rounds
except ImportError:  # standalone: python benchmarks/bench_dataplane.py
    from _harness import bench_main, run_rounds

from repro.cluster import Machine, stampede
from repro.cluster.storage import GB, KB, MB, SharedBandwidthPipe
from repro.hdfs import HdfsCluster
from repro.mapreduce import MapReduceJob, MRJobSpec
from repro.sim import Environment, SeedSequenceRegistry
from repro.spark import SparkConf, SparkStandaloneCluster

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"

#: Concurrency levels for the pipe-churn probe.
CHURN_STREAMS = (1, 10, 100, 1000)


# ------------------------------------------------------------- pipe churn
def bench_pipe_churn(streams: int, transfers_per_stream: int = 0) -> float:
    """Transfer churn at a fixed concurrency level (transfers/sec).

    Sizes are staggered (97 distinct values) so completions never
    coincide: every finish is a pipe state change, the worst case for
    the rescan-everything accounting and the common case for a real
    shuffle burst.
    """
    if not transfers_per_stream:
        # Keep total work roughly constant across concurrency levels.
        transfers_per_stream = max(10, 8000 // streams)
    env = Environment()
    pipe = SharedBandwidthPipe(env, aggregate_bw=100 * GB,
                               per_stream_bw=1 * GB, latency=1e-5)

    def worker(i):
        size = (1 + (i % 97)) * 64 * KB
        for _ in range(transfers_per_stream):
            yield pipe.transfer(size)

    for i in range(streams):
        env.process(worker(i))
    total = streams * transfers_per_stream
    t0 = time.perf_counter()
    env.run()
    return total / (time.perf_counter() - t0)


# ------------------------------------------------------------- MR shuffle
def _mr_stack(num_nodes: int = 4):
    env = Environment()
    machine = Machine(env, stampede(num_nodes=num_nodes))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       block_size=8 * MB,
                       rng=SeedSequenceRegistry(7).stream("bench"))

    def boot():
        yield env.process(hdfs.start())

    env.run(env.process(boot()))
    return env, machine, hdfs


def bench_mr_shuffle(num_lines: int = 3_000, words_per_line: int = 20,
                     num_blocks: int = 48, num_reducers: int = 32) -> float:
    """Wall-clock throughput (shuffled pairs/sec) of an inline MR
    wordcount.

    Records are text lines (``words_per_line`` words each, wordcount's
    natural input), and the map/reduce fan-out is wide (48 x 32 by
    default) so the run is dominated by the shuffle data plane — spill
    writes, per-(map, reduce) fetch traffic through the
    processor-sharing pipes, merge and reduce — not by user mapper
    calls.
    """
    env, machine, hdfs = _mr_stack()
    vocabulary = [f"word-{i:04d}" for i in range(199)]
    lines = [tuple(vocabulary[(i * words_per_line + j) % len(vocabulary)]
                   for j in range(words_per_line))
             for i in range(num_lines)]
    per = (len(lines) + num_blocks - 1) // num_blocks
    slices = [lines[i * per:(i + 1) * per] for i in range(num_blocks)]
    slices = [s for s in slices if s]
    client = hdfs.client(hdfs.master_node.name)

    def put():
        yield env.process(client.put("/bench/lines",
                                     len(slices) * 8 * MB - 1,
                                     payload_slices=slices))

    env.run(env.process(put()))

    spec = MRJobSpec(
        name="bench-wordcount",
        input_path="/bench/lines",
        output_path="/bench/wc",
        mapper=lambda line: [(word, 1) for word in line],
        reducer=lambda word, counts: [(word, sum(counts))],
        num_reducers=num_reducers)
    job = MapReduceJob(env, spec, hdfs)
    t0 = time.perf_counter()
    env.run(env.process(job.run_inline()))
    elapsed = time.perf_counter() - t0
    assert job.counters.reduce_output_records == len(vocabulary)
    return num_lines * words_per_line / elapsed


# ---------------------------------------------------------- Spark shuffle
def bench_spark_reduce_by_key(num_records: int = 50_000,
                              num_partitions: int = 16) -> float:
    """Wall-clock throughput (records/sec) of one reduce_by_key job."""
    env = Environment()
    machine = Machine(env, stampede(num_nodes=4))
    cluster = SparkStandaloneCluster(env, machine, machine.nodes)
    holder = {}

    def boot():
        yield env.process(cluster.start())
        ctx = yield from cluster.context(SparkConf(
            num_executors=4, executor_cores=2,
            default_parallelism=num_partitions))
        holder["ctx"] = ctx

    env.run(env.process(boot()))
    ctx = holder["ctx"]

    pairs = [(i % 499, 1) for i in range(num_records)]
    rdd = ctx.parallelize(pairs, num_partitions).reduce_by_key(
        lambda a, b: a + b)
    t0 = time.perf_counter()
    result = env.run(env.process(rdd.collect()))
    elapsed = time.perf_counter() - t0
    assert sum(v for _, v in result) == num_records
    return num_records / elapsed


# ----------------------------------------------------------------- driver
PROBES = {
    **{f"pipe_churn_{n}_per_sec":
       ((lambda n=n: bench_pipe_churn(n)), "max") for n in CHURN_STREAMS},
    "mr_shuffle_records_per_sec": (bench_mr_shuffle, "max"),
    "spark_rbk_records_per_sec": (bench_spark_reduce_by_key, "max"),
}


def run_benchmarks(rounds: int = 3) -> dict:
    """Best-of-``rounds`` for each probe."""
    return run_rounds(PROBES, rounds)


def _report(results: dict) -> None:
    for n in CHURN_STREAMS:
        print(f"pipe churn {n:>4} streams:  "
              f"{results[f'pipe_churn_{n}_per_sec']:>12,.0f} transfers/sec")
    print(f"MR shuffle wordcount:    "
          f"{results['mr_shuffle_records_per_sec']:>12,.0f} records/sec")
    print(f"Spark reduce_by_key:     "
          f"{results['spark_rbk_records_per_sec']:>12,.0f} records/sec")


# --------------------------------------------------------------- pytest
def test_dataplane_microbenchmarks_smoke():
    """One cut-down round of every probe; catches runtime breakage."""
    churn = bench_pipe_churn(50, transfers_per_stream=10)
    mr = bench_mr_shuffle(num_lines=200, num_blocks=6, num_reducers=4)
    spark = bench_spark_reduce_by_key(num_records=3_000, num_partitions=4)
    assert churn > 0 and mr > 0 and spark > 0


def main(argv=None) -> int:
    return bench_main(
        argv,
        description="data-plane microbenchmarks; writes the JSON baseline",
        baseline_path=BASELINE_PATH,
        run=run_benchmarks,
        report=_report)


if __name__ == "__main__":
    sys.exit(main())
