"""Benchmark-suite configuration.

The benchmarks regenerate the paper's figures inside the discrete-event
simulation: pytest-benchmark measures the *wall time of the harness*
(useful for tracking simulator performance), while the scientifically
meaningful numbers — simulated seconds, speedups, advantages — are
printed as paper-vs-measured tables and attached to each benchmark's
``extra_info``.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
"""

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "figure(name): which paper figure a benchmark regenerates")
