"""Sensitivity sweep: the RP vs RP-YARN crossover vs Lustre quality.

Regenerates the decision boundary behind Figure 6: on a machine whose
shared filesystem delivers little job-visible bandwidth (Stampede-like
under load), RP-YARN's local-disk I/O wins despite its per-unit YARN
overheads; as the shared filesystem improves, plain RP overtakes —
locating the crossover answers the discussion-section question of when
the hybrid deployment is worth it.
"""

import pytest

from repro.experiments.sensitivity import (
    crossover_bandwidth,
    sweep_lustre_bandwidth,
)
from repro.experiments.tables import format_table

BANDWIDTHS_MB = [10.0, 30.0, 100.0, 400.0]


@pytest.mark.figure("S1")
def test_lustre_bandwidth_sweep(benchmark):
    rows = benchmark.pedantic(
        sweep_lustre_bandwidth, kwargs={"bandwidths_mb": BANDWIDTHS_MB},
        rounds=1, iterations=1)
    # advantage decreases monotonically as the shared FS improves
    advantages = [r.yarn_advantage for r in
                  sorted(rows, key=lambda r: r.lustre_bw)]
    assert all(b <= a + 0.02 for a, b in zip(advantages, advantages[1:], strict=False))
    # YARN wins on the degraded end, loses on the fat end
    assert advantages[0] > 0.10
    assert advantages[-1] < 0.0
    crossover = crossover_bandwidth(rows)
    assert crossover is not None
    for row in rows:
        benchmark.extra_info[f"{row.lustre_bw / 1e6:.0f}MBps"] = round(
            row.yarn_advantage * 100, 1)
    print("\nS1 — YARN advantage vs job-visible Lustre bandwidth "
          "(1M pts / 50 clusters / 32 tasks, Stampede)\n" + format_table(
              ["lustre share (MB/s)", "RP (s)", "RP-YARN (s)",
               "YARN advantage (%)"],
              [(f"{r.lustre_bw / 1e6:.0f}", r.rp_runtime, r.yarn_runtime,
                r.yarn_advantage * 100)
               for r in sorted(rows, key=lambda r: r.lustre_bw)])
          + f"\ncrossover at ~{crossover / 1e6:.0f} MB/s")
