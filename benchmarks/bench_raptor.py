"""Raptor overlay microbenchmarks: task-stream wall-clock throughput.

Two probes:

* ``overlay_tasks_per_sec_wall`` — host wall-clock rate of pushing a
  10k-task stream through a warm fork-pilot overlay (31 workers).  This
  is the hot loop of the 1e4-1e6 sweep cells: master dispatch, two
  interconnect sends, worker compute race, result settle.
* ``overlay_fault_tasks_per_sec_wall`` — the same loop with a worker
  node crash mid-stream and retries under a restart policy, so the
  recovery path (requeue, re-dispatch, worker re-registration) stays on
  the measured path.

Run standalone to (re)write the committed ``BENCH_raptor.json``
baseline::

    PYTHONPATH=src python benchmarks/bench_raptor.py [--rounds N] [--out FILE]

check mode (used by CI; exits non-zero on a >``--tolerance`` regression
against the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_raptor.py --rounds 1 \
        --check BENCH_raptor.json --tolerance 0.30

or under pytest (one cut-down round, sanity asserts only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_raptor.py -q

Numbers are machine-dependent; the baseline exists to make *relative*
movement visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.api import RaptorConfig, RestartPolicy, TaskDescription

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_raptor.json"


def _overlay_stack(seed: int = 7, workers: int = 31,
                   restart_policy=None):
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed("stampede", num_nodes=3, seed=seed)
    pilot, _, _ = testbed.start_pilot(
        nodes=2, agent_config=agent_config("fork"))
    overlay = testbed.session.raptor(
        pilot, workers=workers, restart_policy=restart_policy,
        config=RaptorConfig(retain_results=False))
    testbed.env.run(overlay.ready())
    return testbed, overlay


def bench_overlay_stream(ntasks: int = 10_000) -> float:
    """Wall-clock tasks/sec of one warm-overlay task stream."""
    testbed, overlay = _overlay_stack()
    task = TaskDescription(cpu_seconds=0.05)
    t0 = time.perf_counter()
    overlay.submit_tasks([task] * ntasks, futures=False)
    testbed.env.run(overlay.wait())
    elapsed = time.perf_counter() - t0
    stats = overlay.stats()
    assert stats["tasks_completed"] == ntasks, stats
    return ntasks / elapsed


def bench_overlay_fault_stream(ntasks: int = 5_000) -> float:
    """Wall-clock tasks/sec with a mid-stream worker-node crash."""
    testbed, overlay = _overlay_stack(
        restart_policy=RestartPolicy(max_restarts=3, backoff=1.0))
    master_node = overlay.master.node.name
    victim = sorted({w.node.name for w in overlay.master.workers
                     if w.node.name != master_node})[0]
    t0_sim = testbed.env.now
    testbed.session.faults.node_crash(at=t0_sim + 1.0, node=victim,
                                      duration=5.0)
    task = TaskDescription(cpu_seconds=0.05)
    t0 = time.perf_counter()
    overlay.submit_tasks([task] * ntasks, futures=False)
    testbed.env.run(overlay.wait())
    elapsed = time.perf_counter() - t0
    stats = overlay.stats()
    assert stats["tasks_completed"] + stats["tasks_failed"] == ntasks, stats
    assert stats["workers_lost"] > 0, "fault never fired"
    return ntasks / elapsed


# ----------------------------------------------------------------- driver
def run_benchmarks(rounds: int = 3) -> dict:
    """Best-of-``rounds`` for each probe (higher is better)."""
    results = {
        "overlay_tasks_per_sec_wall": 0.0,
        "overlay_fault_tasks_per_sec_wall": 0.0,
    }
    for _ in range(rounds):
        results["overlay_tasks_per_sec_wall"] = max(
            results["overlay_tasks_per_sec_wall"], bench_overlay_stream())
        results["overlay_fault_tasks_per_sec_wall"] = max(
            results["overlay_fault_tasks_per_sec_wall"],
            bench_overlay_fault_stream())
    results["rounds"] = rounds
    return results


def check_against(results: dict, baseline: dict,
                  tolerance: float) -> list:
    """Probes regressed by more than ``tolerance`` vs the baseline."""
    failures = []
    for key, base in baseline.items():
        if key == "rounds" or not isinstance(base, (int, float)):
            continue
        measured = results.get(key)
        if measured is None:
            failures.append(f"{key}: missing from results")
        elif measured < base * (1.0 - tolerance):
            failures.append(
                f"{key}: {measured:,.0f} < {base * (1 - tolerance):,.0f} "
                f"(baseline {base:,.0f}, tolerance {tolerance:.0%})")
    return failures


# --------------------------------------------------------------- pytest
def test_raptor_microbenchmarks_smoke():
    """One cut-down round of both probes; catches runtime breakage."""
    stream = bench_overlay_stream(ntasks=500)
    faulted = bench_overlay_fault_stream(ntasks=500)
    assert stream > 0 and faulted > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="raptor overlay microbenchmarks; writes the JSON "
                    "baseline")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--out", default=str(BASELINE_PATH), metavar="FILE",
                        help="baseline path ('-' for stdout only)")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare against a committed baseline instead "
                             "of writing one; exit 1 on regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression in check mode")
    args = parser.parse_args(argv)

    results = run_benchmarks(rounds=args.rounds)
    print(f"overlay task stream:        "
          f"{results['overlay_tasks_per_sec_wall']:>12,.0f} tasks/sec (wall)")
    print(f"overlay stream w/ crash:    "
          f"{results['overlay_fault_tasks_per_sec_wall']:>12,.0f} "
          f"tasks/sec (wall)")

    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against(results, baseline, args.tolerance)
        if failures:
            print("REGRESSION vs baseline:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"ok vs {args.check} (tolerance {args.tolerance:.0%})")
        return 0

    if args.out != "-":
        with open(args.out, "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
