"""Raptor overlay microbenchmarks: task-stream wall-clock throughput.

Two probes:

* ``overlay_tasks_per_sec_wall`` — host wall-clock rate of pushing a
  10k-task stream through a warm fork-pilot overlay (31 workers).  This
  is the hot loop of the 1e4-1e6 sweep cells: master dispatch, two
  interconnect sends, worker compute race, result settle.
* ``overlay_fault_tasks_per_sec_wall`` — the same loop with a worker
  node crash mid-stream and retries under a restart policy, so the
  recovery path (requeue, re-dispatch, worker re-registration) stays on
  the measured path.

Run standalone to (re)write the committed ``BENCH_raptor.json``
baseline::

    PYTHONPATH=src python benchmarks/bench_raptor.py [--rounds N] [--out FILE]

check mode (used by CI; exits non-zero on a >``--tolerance`` regression
against the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_raptor.py --rounds 1 \
        --check BENCH_raptor.json --tolerance 0.30

or under pytest (one cut-down round, sanity asserts only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_raptor.py -q

Numbers are machine-dependent; the baseline exists to make *relative*
movement visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

try:
    from benchmarks._harness import bench_main, run_rounds
except ImportError:  # standalone: python benchmarks/bench_raptor.py
    from _harness import bench_main, run_rounds

from repro.api import RaptorConfig, RestartPolicy, TaskDescription

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_raptor.json"


def _overlay_stack(seed: int = 7, workers: int = 31,
                   restart_policy=None):
    from repro.experiments.calibration import agent_config
    from repro.experiments.harness import Testbed

    testbed = Testbed("stampede", num_nodes=3, seed=seed)
    pilot, _, _ = testbed.start_pilot(
        nodes=2, agent_config=agent_config("fork"))
    overlay = testbed.session.raptor(
        pilot, workers=workers, restart_policy=restart_policy,
        config=RaptorConfig(retain_results=False))
    testbed.env.run(overlay.ready())
    return testbed, overlay


def bench_overlay_stream(ntasks: int = 10_000) -> float:
    """Wall-clock tasks/sec of one warm-overlay task stream."""
    testbed, overlay = _overlay_stack()
    task = TaskDescription(cpu_seconds=0.05)
    t0 = time.perf_counter()
    overlay.submit_tasks([task] * ntasks, futures=False)
    testbed.env.run(overlay.wait())
    elapsed = time.perf_counter() - t0
    stats = overlay.stats()
    assert stats["tasks_completed"] == ntasks, stats
    return ntasks / elapsed


def bench_overlay_fault_stream(ntasks: int = 5_000) -> float:
    """Wall-clock tasks/sec with a mid-stream worker-node crash."""
    testbed, overlay = _overlay_stack(
        restart_policy=RestartPolicy(max_restarts=3, backoff=1.0))
    master_node = overlay.master.node.name
    victim = sorted({w.node.name for w in overlay.master.workers
                     if w.node.name != master_node})[0]
    t0_sim = testbed.env.now
    testbed.session.faults.node_crash(at=t0_sim + 1.0, node=victim,
                                      duration=5.0)
    task = TaskDescription(cpu_seconds=0.05)
    t0 = time.perf_counter()
    overlay.submit_tasks([task] * ntasks, futures=False)
    testbed.env.run(overlay.wait())
    elapsed = time.perf_counter() - t0
    stats = overlay.stats()
    assert stats["tasks_completed"] + stats["tasks_failed"] == ntasks, stats
    assert stats["workers_lost"] > 0, "fault never fired"
    return ntasks / elapsed


# ----------------------------------------------------------------- driver
PROBES = {
    "overlay_tasks_per_sec_wall": (bench_overlay_stream, "max"),
    "overlay_fault_tasks_per_sec_wall": (bench_overlay_fault_stream,
                                         "max"),
}


def run_benchmarks(rounds: int = 3) -> dict:
    """Best-of-``rounds`` for each probe."""
    return run_rounds(PROBES, rounds)


def _report(results: dict) -> None:
    print(f"overlay task stream:        "
          f"{results['overlay_tasks_per_sec_wall']:>12,.0f} tasks/sec (wall)")
    print(f"overlay stream w/ crash:    "
          f"{results['overlay_fault_tasks_per_sec_wall']:>12,.0f} "
          f"tasks/sec (wall)")


# --------------------------------------------------------------- pytest
def test_raptor_microbenchmarks_smoke():
    """One cut-down round of both probes; catches runtime breakage.

    The fault probe needs enough tasks that the stream is still
    in flight at the simulated crash instant (500 drains too early).
    """
    stream = bench_overlay_stream(ntasks=500)
    faulted = bench_overlay_fault_stream(ntasks=1_000)
    assert stream > 0 and faulted > 0


def main(argv=None) -> int:
    return bench_main(
        argv,
        description="raptor overlay microbenchmarks; writes the JSON "
                    "baseline",
        baseline_path=BASELINE_PATH,
        run=run_benchmarks,
        report=_report)


if __name__ == "__main__":
    sys.exit(main())
