"""Claim C1 (§IV-B): the storage mechanism behind Figure 6.

"One of the reasons for this is that for RADICAL-Pilot-YARN the local
file system is used, while for RADICAL-Pilot the Lustre filesystem is
used" — i.e. the shared parallel filesystem is a fixed, contended
resource while node-local disks scale with the allocation.

This microbenchmark drives both storage models directly: N concurrent
streams write-and-read a fixed per-stream volume against (a) the
job-visible Lustre share and (b) the allocation's local disks, for the
paper's 8/16/32-task configurations.
"""

import pytest

from repro.cluster.machine import Machine
from repro.experiments.calibration import TASK_CONFIGS
from repro.experiments.harness import experiment_machine
from repro.sim import Environment


def storage_sweep(machine_name: str, per_stream_bytes: float = 200e6):
    """Makespan of N concurrent write+read streams, shared vs local."""
    results = {}
    for ntasks, nodes in sorted(TASK_CONFIGS.items()):
        for target in ("lustre", "local"):
            env = Environment()
            machine = Machine(env, experiment_machine(machine_name, nodes))

            def stream(i, target=target, machine=machine, nodes=nodes):
                if target == "lustre":
                    volume = machine.shared_fs
                else:
                    volume = machine.nodes[i % nodes].local_disk
                yield volume.write(per_stream_bytes)
                volume.delete(per_stream_bytes)
                yield volume.read(per_stream_bytes)

            procs = [env.process(stream(i)) for i in range(ntasks)]
            env.run(env.all_of(procs))
            results[(ntasks, target)] = env.now
    return results


@pytest.mark.figure("C1")
def test_lustre_contention_vs_local_scaling(benchmark):
    results = benchmark.pedantic(storage_sweep, args=("stampede",),
                                 rounds=1, iterations=1)
    # Lustre: fixed aggregate -> makespan grows ~linearly with streams
    assert results[(32, "lustre")] > 2.5 * results[(8, "lustre")]
    # Local disks: capacity grows with nodes -> makespan roughly flat
    assert results[(32, "local")] < 1.5 * results[(8, "local")]
    # At scale, local wins (the Figure 6 mechanism)
    assert results[(32, "local")] < results[(32, "lustre")]
    for key, value in results.items():
        benchmark.extra_info[f"{key[0]}tasks/{key[1]}"] = round(value, 1)
    print("\nC1 — storage makespan (s), 200 MB/stream on stampede")
    for ntasks, nodes in sorted(TASK_CONFIGS.items()):
        print(f"  {ntasks:2d} tasks / {nodes} node(s): "
              f"lustre {results[(ntasks, 'lustre')]:8.1f}   "
              f"local {results[(ntasks, 'local')]:8.1f}")


@pytest.mark.figure("C1-wrangler")
def test_wrangler_io_not_saturated(benchmark):
    """Paper: "we were not able to saturate the I/O system" on Wrangler:
    its Lustre share is wide enough that 32 streams degrade far less
    than on Stampede."""
    results = benchmark.pedantic(storage_sweep, args=("wrangler",),
                                 rounds=1, iterations=1)
    stampede = storage_sweep("stampede")
    wr_degradation = results[(32, "lustre")] / results[(8, "lustre")]
    st_degradation = stampede[(32, "lustre")] / stampede[(8, "lustre")]
    assert wr_degradation <= st_degradation
    assert results[(32, "lustre")] < stampede[(32, "lustre")]
    benchmark.extra_info["wrangler_degradation"] = round(wr_degradation, 2)
    benchmark.extra_info["stampede_degradation"] = round(st_degradation, 2)
