"""Figure 5: RADICAL-Pilot and RADICAL-Pilot-YARN overheads.

Regenerates both panels:

* main — pilot startup for RP / RP-YARN Mode I / RP-YARN Mode II on
  Stampede and Wrangler (paper: Mode I adds 50-85 s; Mode II is
  comparable to plain RP);
* inset — Compute-Unit startup for RP vs RP-YARN (paper: seconds vs
  tens of seconds, due to the two-stage AM-then-container allocation).
"""

import pytest

from repro.experiments import (
    run_figure5_pilot_startup,
    run_figure5_unit_startup,
)
from repro.experiments.tables import PAPER_TARGETS, figure5_report

#: The inset rows, computed once per module: the unit-startup benchmark
#: fills it, and the pilot-startup report reuses it instead of paying a
#: second full harness run just to print the table.
_UNIT_ROWS_CACHE = []


def _unit_rows():
    if not _UNIT_ROWS_CACHE:
        _UNIT_ROWS_CACHE.append(run_figure5_unit_startup())
    return _UNIT_ROWS_CACHE[0]


@pytest.mark.figure("5-inset")
def test_unit_startup(benchmark):
    rows = benchmark.pedantic(run_figure5_unit_startup,
                              rounds=1, iterations=1)
    _UNIT_ROWS_CACHE.append(rows)  # share with the pilot-startup report
    by = {(r.machine, r.flavor): r.unit_startup for r in rows}

    # paper inset: RP CU startup is a few seconds; RP-YARN is tens of
    # seconds because of the two-stage allocation
    for machine in ("stampede", "wrangler"):
        assert by[(machine, "RP")] < 10.0
        assert by[(machine, "RP-YARN")] > 20.0
        assert by[(machine, "RP-YARN")] > 3 * by[(machine, "RP")]

    for (machine, flavor), value in by.items():
        benchmark.extra_info[f"{machine}/{flavor}"] = round(value, 1)


@pytest.mark.figure("5-main")
def test_pilot_startup(benchmark):
    rows = benchmark.pedantic(run_figure5_pilot_startup,
                              rounds=1, iterations=1)
    plain = {r.machine: r.pilot_startup for r in rows if r.flavor == "RP"}
    mode1 = {r.machine: r.pilot_startup for r in rows
             if r.flavor.endswith("(Mode I)")}
    mode2 = {r.machine: r.pilot_startup for r in rows
             if r.flavor.endswith("(Mode II)")}

    # paper: plain RP startup in the tens of seconds on both machines
    lo, hi = PAPER_TARGETS["pilot_startup_plain"]
    for machine, value in plain.items():
        assert lo <= value <= hi, (machine, value)

    # paper: "the overhead for Mode I is between 50-85 sec depending
    # upon the resource selected"
    o_lo, o_hi = PAPER_TARGETS["mode1_overhead"]
    for machine in mode1:
        overhead = mode1[machine] - plain[machine]
        assert o_lo - 10 <= overhead <= o_hi + 10, (machine, overhead)

    # paper: Mode II "comparable to the normal RADICAL-Pilot startup"
    assert abs(mode2["wrangler"] - plain["wrangler"]) < 15.0

    for row in rows:
        benchmark.extra_info[f"{row.machine}/{row.flavor}"] = round(
            row.pilot_startup, 1)
    print("\n" + figure5_report(rows, _unit_rows()))
