"""Multi-tenant service benchmarks: 10k+ concurrent sessions, one process.

Two wall-clock probes over :mod:`repro.service`:

* ``service_sessions_per_sec_wall`` — host wall-clock rate of driving
  the full bench scenario (64 tenants x 160 sessions = 10,240 sessions,
  two raptor tasks each) through ONE :class:`PilotService` instance to
  quiescence.  The probe asserts the service really held >= 10,000
  concurrently-open sessions and settled every ticket.
* ``service_sharded_sessions_per_sec_wall`` — the same scenario split
  shared-nothing over 2 shards on a 2-worker process pool
  (:func:`repro.service.run_sharded`).

Alongside the wall numbers the baseline carries the *deterministic*
submit/completion latency percentiles (simulated seconds, from the
service's own telemetry histograms): they never jitter with host load,
so in ``--check`` mode they pin the service's latency SLOs exactly.

Run standalone to (re)write the committed ``BENCH_service.json``
baseline::

    PYTHONPATH=src python benchmarks/bench_service.py [--rounds N] [--out FILE]

check mode (used by CI; exits non-zero on a >``--tolerance`` regression
against the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_service.py --rounds 1 \
        --check BENCH_service.json --tolerance 0.30

or under pytest (one cut-down round, sanity asserts only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q

Numbers are machine-dependent; the baseline exists to make *relative*
movement visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

try:
    from benchmarks._harness import (
        bench_main,
        percentile_keys,
        run_rounds,
    )
except ImportError:  # standalone: python benchmarks/bench_service.py
    from _harness import bench_main, percentile_keys, run_rounds

from repro.service import LoadSpec, run_load, run_sharded

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The headline scenario: 10,240 sessions against one service process.
#: task_seconds (simulated) far exceeds the arrival window, so every
#: session is still open when the last one arrives — "concurrent" is
#: load-bearing, not nominal.
BENCH_SPEC = LoadSpec(tenants=64, sessions_per_tenant=160,
                      tasks_per_session=2, arrival_window=2.0,
                      task_seconds=5.0, raptor_workers=31)

#: Deterministic sim-side latency rows carried next to the wall probes
#: (captured from the most recent single-instance probe run).
_last_row: dict = {}


def bench_service_sessions(spec: LoadSpec = BENCH_SPEC,
                           min_concurrent: int = 10_000) -> float:
    """Wall-clock sessions/sec of one service instance to quiescence."""
    t0 = time.perf_counter()
    row = run_load(spec)
    elapsed = time.perf_counter() - t0
    assert row["peak_concurrent_sessions"] >= min_concurrent, row
    assert row["tickets_failed"] == 0, row
    assert row["tickets_completed"] == row["tickets_submitted"], row
    assert row["sessions_closed"] == row["sessions_opened"], row
    _last_row.update(row)
    return row["sessions_opened"] / elapsed


def bench_service_sharded(spec: LoadSpec = BENCH_SPEC,
                          shards: int = 2) -> float:
    """Wall-clock sessions/sec of the same load split over a pool."""
    t0 = time.perf_counter()
    sharded = run_sharded(spec, shards=shards, jobs=shards)
    elapsed = time.perf_counter() - t0
    totals = sharded.aggregate()["totals"]
    assert totals["tickets_failed"] == 0, totals
    assert totals["sessions_closed"] == totals["sessions_opened"], totals
    return totals["sessions_opened"] / elapsed


# ----------------------------------------------------------------- driver
PROBES = {
    "service_sessions_per_sec_wall": (bench_service_sessions, "max"),
    "service_sharded_sessions_per_sec_wall": (bench_service_sharded,
                                              "max"),
}

#: Simulated-latency keys checked with an upper bound in --check mode.
LATENCY_KEYS = percentile_keys("submit") + percentile_keys("completion")


def run_benchmarks(rounds: int = 3) -> dict:
    """Best-of-``rounds`` wall probes + deterministic latency rows."""
    results = run_rounds(PROBES, rounds)
    results["concurrent_sessions"] = _last_row["peak_concurrent_sessions"]
    for key in LATENCY_KEYS:
        results[key] = _last_row[key]
    return results


def _report(results: dict) -> None:
    print(f"one-instance session churn: "
          f"{results['service_sessions_per_sec_wall']:>10,.0f} "
          f"sessions/sec (wall), "
          f"{results['concurrent_sessions']:,} concurrent")
    print(f"2-shard process pool:       "
          f"{results['service_sharded_sessions_per_sec_wall']:>10,.0f} "
          f"sessions/sec (wall)")
    for prefix, label in (("submit", "submit latency (sim)"),
                          ("completion", "completion latency (sim)")):
        p50, p95, p99 = (results[k] for k in percentile_keys(prefix))
        print(f"{label:<27} p50 {p50:>8.2f}s  p95 {p95:>8.2f}s  "
              f"p99 {p99:>8.2f}s")


# --------------------------------------------------------------- pytest
def test_service_microbenchmarks_smoke():
    """One cut-down round of both probes; catches runtime breakage."""
    small = LoadSpec(tenants=8, sessions_per_tenant=16,
                     raptor_workers=8)
    churn = bench_service_sessions(small, min_concurrent=128)
    sharded = bench_service_sharded(small, shards=2)
    assert churn > 0 and sharded > 0
    for key in LATENCY_KEYS:
        assert _last_row[key] >= 0.0


def main(argv=None) -> int:
    return bench_main(
        argv,
        description="multi-tenant service benchmarks; writes the JSON "
                    "baseline",
        baseline_path=BASELINE_PATH,
        run=run_benchmarks,
        report=_report,
        lower_is_better=LATENCY_KEYS)


if __name__ == "__main__":
    sys.exit(main())
