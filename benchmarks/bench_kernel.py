"""Simulation-kernel microbenchmarks: the repo's perf baseline.

Three probes, smallest to largest:

* ``events_per_sec`` — raw event-loop throughput: one process yielding
  timeouts back-to-back (timeout creation + heap push/pop + resume).
* ``alloc_release_per_sec`` — agent-scheduler hot path: allocate /
  release cycles against a spread-policy ContinuousScheduler.
* ``figure5_cell_seconds`` — wall time of one end-to-end experiment
  cell (figure5 unit-startup on a warm pilot), i.e. what a sweep pays
  per cell.

Run standalone to (re)write the committed ``BENCH_kernel.json``
baseline::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--rounds N] [--out FILE]

check mode (exits non-zero on a >``--tolerance`` regression against
the committed baseline)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --rounds 1 \
        --check BENCH_kernel.json --tolerance 0.30

or under pytest (one quick round, sanity asserts only)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q

Numbers are machine-dependent; the baseline exists to make *relative*
movement visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

try:
    from benchmarks._harness import bench_main, run_rounds
except ImportError:  # standalone: python benchmarks/bench_kernel.py
    from _harness import bench_main, run_rounds

from repro.cluster.storage import StorageSpec
from repro.cluster.node import Node
from repro.core.agent.scheduler import ContinuousScheduler
from repro.sim.engine import Environment

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def bench_events_per_sec(n_events: int = 200_000) -> float:
    """Timeout-churn throughput of the bare event loop."""
    env = Environment()

    def ticker():
        timeout = env.timeout
        for _ in range(n_events):
            yield timeout(1.0)

    env.process(ticker())
    t0 = time.perf_counter()
    env.run()
    return n_events / (time.perf_counter() - t0)


def _bench_nodes(env: Environment, count: int = 8,
                 cores: int = 16) -> list:
    disk = StorageSpec(name="bench-disk", aggregate_bw=1e9,
                       per_stream_bw=1e9, latency=1e-4, capacity=1e12)
    return [Node(env, name=f"bench-{i:02d}", cores=cores,
                 memory_bytes=64 * 1024 ** 3, local_disk=disk)
            for i in range(count)]


def bench_alloc_release_per_sec(n_cycles: int = 20_000) -> float:
    """Allocate/release cycles through the spread-policy scheduler."""
    env = Environment()
    scheduler = ContinuousScheduler(env, _bench_nodes(env),
                                    policy="spread")

    def worker():
        for _ in range(n_cycles):
            allocation = yield scheduler.allocate(4)
            scheduler.release(allocation)

    env.process(worker())
    t0 = time.perf_counter()
    env.run()
    return n_cycles / (time.perf_counter() - t0)


def bench_figure5_cell_seconds() -> float:
    """Wall time of one end-to-end figure5 unit-startup sweep cell."""
    from repro.experiments.sweeps import figure5_cells, run_cell
    cell = next(c for c in figure5_cells(42) if c.kind == "unit-startup")
    return run_cell(cell)["wall_seconds"]


PROBES = {
    "events_per_sec": (bench_events_per_sec, "max"),
    "alloc_release_per_sec": (bench_alloc_release_per_sec, "max"),
    "figure5_cell_seconds": (bench_figure5_cell_seconds, "min"),
}


def run_benchmarks(rounds: int = 3) -> dict:
    """Best-of-``rounds`` for each probe."""
    return run_rounds(PROBES, rounds)


def _report(results: dict) -> None:
    print(f"events/sec:          {results['events_per_sec']:>12,.0f}")
    print(f"alloc-release/sec:   {results['alloc_release_per_sec']:>12,.0f}")
    print(f"figure5 cell (s):    {results['figure5_cell_seconds']:>12.4f}")


# --------------------------------------------------------------- pytest
def test_kernel_microbenchmarks_smoke():
    """One quick round of every probe; catches import/runtime breakage."""
    events = bench_events_per_sec(n_events=20_000)
    allocs = bench_alloc_release_per_sec(n_cycles=2_000)
    cell = bench_figure5_cell_seconds()
    assert events > 0 and allocs > 0 and cell > 0


def main(argv=None) -> int:
    return bench_main(
        argv,
        description="kernel microbenchmarks; writes the JSON baseline",
        baseline_path=BASELINE_PATH,
        run=run_benchmarks,
        report=_report,
        lower_is_better=("figure5_cell_seconds",))


if __name__ == "__main__":
    sys.exit(main())
