"""Figure 6: K-Means on Stampede and Wrangler, RP vs RP-YARN.

Regenerates the full grid: 3 scenarios (10k pts / 5k clusters,
100k / 500, 1M / 50; 3-D; 2 iterations) x task counts {8, 16, 32} on
{1, 2, 3} nodes x 2 machines x 2 runtimes.  Every cell re-validates
the computed centroids against the single-process NumPy reference.

Asserted paper shapes:
* runtimes decrease with the number of tasks (every scenario);
* Wrangler is faster than Stampede for matching cells;
* RP-YARN wins at larger task counts ("mainly due to the better
  performance of the local disks"), with a positive net advantage at
  >= 16 tasks (paper: +13% on average);
* RP-YARN's 8->32 speedup beats plain RP's on the 1M-point scenario
  (paper: 3.2 vs 2.4);
* plain RP's speedup declines as points (and thus shuffle I/O) grow;
* the YARN overhead is visible at 8 tasks.

See EXPERIMENTS.md for the divergences (notably: the paper reports no
speedup decline on Wrangler, while our calibration — which trades that
off to reproduce the net YARN advantage — shows a mild one).
"""

import pytest

from repro.experiments.figure6 import run_figure6, speedup
from repro.experiments.tables import figure6_report


@pytest.mark.figure("6")
def test_kmeans_grid(benchmark):
    rows = benchmark.pedantic(run_figure6, rounds=1, iterations=1)
    assert len(rows) == 36
    assert all(r.centroids_ok for r in rows)

    def runtime(machine, flavor, points, ntasks):
        return next(r.runtime for r in rows
                    if r.machine == machine and r.flavor == flavor
                    and r.points == points and r.ntasks == ntasks)

    # runtimes decrease with task count, everywhere
    for machine in ("stampede", "wrangler"):
        for flavor in ("RP", "RP-YARN"):
            for points in (10_000, 100_000, 1_000_000):
                t8 = runtime(machine, flavor, points, 8)
                t16 = runtime(machine, flavor, points, 16)
                t32 = runtime(machine, flavor, points, 32)
                assert t8 > t16 > t32, (machine, flavor, points)

    # Wrangler beats Stampede cell-for-cell (better hardware)
    for flavor in ("RP", "RP-YARN"):
        for points in (10_000, 100_000, 1_000_000):
            for ntasks in (8, 16, 32):
                assert (runtime("wrangler", flavor, points, ntasks)
                        < runtime("stampede", flavor, points, ntasks))

    # YARN wins at larger task counts where I/O and environment loading
    # contend on Lustre: all 32-task Stampede cells, and the big
    # scenario at 16 tasks on both machines
    for points in (10_000, 100_000, 1_000_000):
        assert (runtime("stampede", "RP-YARN", points, 32)
                < runtime("stampede", "RP", points, 32))
    assert (runtime("stampede", "RP-YARN", 1_000_000, 16)
            < runtime("stampede", "RP", 1_000_000, 16))
    assert (runtime("wrangler", "RP-YARN", 1_000_000, 16)
            < runtime("wrangler", "RP", 1_000_000, 16))

    # and with a better 8->32 speedup (paper: 3.2 vs 2.4 at 1M points)
    for machine in ("stampede", "wrangler"):
        s_yarn = speedup(rows, machine, "RP-YARN", 1_000_000)
        s_rp = speedup(rows, machine, "RP", 1_000_000)
        assert s_yarn > s_rp, (machine, s_yarn, s_rp)

    # the net YARN advantage at >=16 tasks is positive (paper: +13%)
    from repro.experiments.figure6 import yarn_advantage
    assert yarn_advantage(rows) > 0.0

    # YARN overhead visible at 8 tasks on the small scenario
    assert (runtime("stampede", "RP-YARN", 10_000, 8)
            > runtime("stampede", "RP", 10_000, 8))

    # plain-RP speedup declines as points (and thus I/O) grow
    st_small = speedup(rows, "stampede", "RP", 10_000)
    st_big = speedup(rows, "stampede", "RP", 1_000_000)
    assert st_small - st_big > 0.2

    benchmark.extra_info["speedup_stampede_rp_1m"] = round(st_big, 2)
    benchmark.extra_info["speedup_stampede_yarn_1m"] = round(
        speedup(rows, "stampede", "RP-YARN", 1_000_000), 2)
    print("\n" + figure6_report(rows))
