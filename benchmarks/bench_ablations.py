"""Ablations A1-A3: quantifying the paper's design choices."""

import pytest

from repro.experiments.ablations import (
    run_am_reuse,
    run_integration_level,
    run_spark_deploy_mode,
)
from repro.experiments.tables import format_table


@pytest.mark.figure("A1")
def test_integration_level(benchmark):
    """Agent-level YARN integration (chosen) vs Pilot-Manager-level."""
    rows = benchmark.pedantic(run_integration_level, rounds=1, iterations=1)
    by = {r.wiring: r for r in rows}
    # the rejected design is strictly slower per unit, before even
    # considering that firewalls usually forbid it outright
    assert (by["pilot-manager-level"].unit_startup
            > by["agent-level"].unit_startup + 2.0)
    for r in rows:
        benchmark.extra_info[r.wiring] = round(r.unit_startup, 1)
    print("\nA1 — YARN integration level (CU startup)\n" + format_table(
        ["wiring", "CU startup (s)", "WAN round-trips"],
        [(r.wiring, r.unit_startup, r.wan_roundtrips) for r in rows]))


@pytest.mark.figure("A2")
def test_spark_deploy_mode(benchmark):
    """Spark standalone (chosen) vs Spark-on-YARN (two frameworks)."""
    rows = benchmark.pedantic(run_spark_deploy_mode, rounds=1, iterations=1)
    by = {r.mode: r for r in rows}
    assert by["standalone"].cluster_ready < by["spark-on-yarn"].cluster_ready
    assert by["spark-on-yarn"].frameworks_started == 2
    for r in rows:
        benchmark.extra_info[r.mode] = round(r.cluster_ready, 1)
    print("\nA2 — Spark deployment mode (cluster-ready time)\n"
          + format_table(
              ["mode", "cluster ready (s)", "frameworks"],
              [(r.mode, r.cluster_ready, r.frameworks_started)
               for r in rows]))


@pytest.mark.figure("A3-workload")
def test_am_reuse_on_kmeans_workload(benchmark):
    """A3 on the real workload: re-running two Figure 6 cells with AM
    re-use enabled shows how far the paper's proposed optimization
    moves the YARN advantage (EXPERIMENTS.md divergence #1)."""
    from repro.experiments.figure6 import run_figure6_cell

    def run():
        out = {}
        for points, clusters, ntasks in ((10_000, 5_000, 32),
                                         (1_000_000, 50, 32)):
            rp = run_figure6_cell("stampede", "RP", points, clusters,
                                  ntasks)
            yarn = run_figure6_cell("stampede", "RP-YARN", points,
                                    clusters, ntasks)
            reuse = run_figure6_cell("stampede", "RP-YARN", points,
                                     clusters, ntasks,
                                     reuse_application_master=True)
            assert rp.centroids_ok and yarn.centroids_ok \
                and reuse.centroids_ok
            out[points] = (rp.runtime, yarn.runtime, reuse.runtime)
        return out

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for points, (rp, yarn, reuse) in sorted(spans.items()):
        # AM re-use strictly improves the YARN runtime
        assert reuse < yarn
        rows.append((f"{points:,}", rp, yarn, reuse,
                     (rp - reuse) / rp * 100))
        benchmark.extra_info[f"{points}pts"] = round(reuse, 1)
    print("\nA3 on Figure 6 cells (Stampede, 32 tasks): runtime (s)\n"
          + format_table(
              ["points", "RP", "RP-YARN", "RP-YARN + AM re-use",
               "reuse advantage vs RP (%)"], rows))


@pytest.mark.figure("A3")
def test_am_reuse(benchmark):
    """AM re-use: the optimization §IV-A says "will reduce the startup
    time significantly" — implemented and measured."""
    rows = benchmark.pedantic(run_am_reuse, rounds=1, iterations=1)
    by = {r.mode: r for r in rows}
    saving = (by["per-unit AM"].warm_unit_startup
              - by["re-used AM"].warm_unit_startup)
    assert saving > 5.0, f"AM re-use saved only {saving:.1f}s"
    for r in rows:
        benchmark.extra_info[r.mode] = round(r.warm_unit_startup, 1)
    benchmark.extra_info["saving_s"] = round(saving, 1)
    print("\nA3 — Application Master re-use (warm CU startup)\n"
          + format_table(
              ["mode", "warm CU startup (s)"],
              [(r.mode, r.warm_unit_startup) for r in rows])
          + f"\nsaving: {saving:.1f}s per unit")
