"""Future-work extensions (§V), quantified.

* **A4 — in-memory tier for iterative algorithms:** "We will evaluate
  ... utilizing in-memory filesystems and runtimes (e.g., Tachyon and
  Spark) for iterative algorithms."  Iterative K-Means with the point
  chunks cached in the node-RAM tier after iteration 1 vs re-reading
  them from storage every iteration.
* **A5 — shuffle transport:** §II: "in some cases, e.g. if ... the
  number of parallel tasks is low to medium, the usage of Lustre or
  another parallel filesystem can yield in a better performance"; §V
  cites the RDMA shuffle (Panda et al.).  One shuffle-heavy MapReduce
  job under all three transports, at low and high parallelism.
"""

import numpy as np
import pytest

from repro.analytics import generate_points
from repro.analytics.kmeans import KMeansCost, run_kmeans_pilot
from repro.cluster import Machine
from repro.experiments.calibration import agent_config
from repro.experiments.harness import Testbed, experiment_machine
from repro.experiments.tables import format_table
from repro.hdfs import HdfsCluster
from repro.mapreduce import MapReduceJob, MRJobSpec
from repro.sim import Environment


def iterative_kmeans_span(cache_in_memory: bool) -> float:
    testbed = Testbed("stampede", num_nodes=2)
    testbed.start_pilot(nodes=2, agent_config=agent_config("yarn"))
    points = generate_points(5000, 8, seed=4)
    cost = KMeansCost(bytes_per_point_in=400_000.0)  # I/O-heavy chunks

    def workload():
        yield from run_kmeans_pilot(
            testbed.umgr, points, 8, ntasks=8, iterations=4, cost=cost,
            cache_in_memory=cache_in_memory)

    t0 = testbed.env.now
    testbed.run(workload())
    return testbed.env.now - t0


@pytest.mark.figure("A4")
def test_in_memory_tier_for_iterations(benchmark):
    def run():
        return {cached: iterative_kmeans_span(cached)
                for cached in (False, True)}

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    saving = (spans[False] - spans[True]) / spans[False]
    assert spans[True] < spans[False]
    benchmark.extra_info["disk_s"] = round(spans[False], 1)
    benchmark.extra_info["memory_s"] = round(spans[True], 1)
    print("\nA4 — in-memory tier, 4-iteration K-Means (RP-YARN)\n"
          + format_table(
              ["input tier after iteration 1", "time (s)"],
              [("storage (re-read)", spans[False]),
               ("memory (cached)", spans[True])])
          + f"\nsaving: {saving * 100:.0f}%")


@pytest.mark.figure("A6")
def test_streaming_vs_persist_handoff(benchmark):
    """§V: "data needs to be moved, which involves persisting files and
    re-reading them into Spark ... In the future it can be expected
    that data can be directly streamed between these two environments."
    We built the streaming channel; this measures what it saves on the
    simulation->analysis handoff."""
    from repro.cluster import Machine
    from repro.core.streaming import (
        StreamChannel,
        persist_handoff,
        stream_pipeline,
    )

    def run():
        work = [(list(range(100)), 200e6) for _ in range(10)]  # 2 GB
        spans = {}

        env1 = Environment()
        machine1 = Machine(env1, experiment_machine("stampede", 2))

        def persist_driver():
            yield from persist_handoff(env1, machine1.shared_fs, work,
                                       consume_chunk=len)

        env1.run(env1.process(persist_driver()))
        spans["persist + re-read (status quo)"] = env1.now

        env2 = Environment()
        machine2 = Machine(env2, experiment_machine("stampede", 2))
        channel = StreamChannel(env2, network=machine2.network,
                                src=machine2.nodes[0].name,
                                dst=machine2.nodes[1].name)

        def stream_driver():
            yield from stream_pipeline(env2, channel, work,
                                       consume_chunk=len)

        env2.run(env2.process(stream_driver()))
        spans["direct streaming (§V future)"] = env2.now
        return spans

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    persist = spans["persist + re-read (status quo)"]
    stream = spans["direct streaming (§V future)"]
    assert stream < persist / 2
    for key, value in spans.items():
        benchmark.extra_info[key] = round(value, 1)
    print("\nA6 — HPC->analytics handoff of 2 GB (Stampede)\n"
          + format_table(["handoff", "time (s)"],
                         [(k, v) for k, v in spans.items()]))


def shuffle_job_span(transport: str, num_chunks: int) -> float:
    env = Environment()
    machine = Machine(env, experiment_machine("stampede", 3))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2)
    env.run(env.process(hdfs.start()))
    words = [f"w{i % 50}" for i in range(num_chunks * 40)]
    per = len(words) // num_chunks
    slices = [words[i * per:(i + 1) * per] for i in range(num_chunks)]
    client = hdfs.client(hdfs.master_node.name)
    env.run(env.process(client.put(
        "/in", 1.0 * len(words), payload_slices=slices,
        block_size=max(1.0, len(words) / num_chunks))))
    spec = MRJobSpec(
        name=f"shuffle-{transport}", input_path="/in", output_path="/out",
        mapper=lambda w: [(w, 1)],
        reducer=lambda w, c: [(w, sum(c))],
        num_reducers=4, bytes_per_pair=2e6,     # shuffle-dominated
        shuffle_transport=transport)
    job = MapReduceJob(env, spec, hdfs)
    t0 = env.now
    env.run(env.process(job.run_inline()))
    return env.now - t0


@pytest.mark.figure("A5")
def test_shuffle_transport_tradeoffs(benchmark):
    def run():
        out = {}
        for tasks in (4, 24):
            for transport in ("local", "lustre", "rdma"):
                out[(tasks, transport)] = shuffle_job_span(transport, tasks)
        return out

    spans = benchmark.pedantic(run, rounds=1, iterations=1)
    # RDMA (no disk on either side) wins at any scale
    for tasks in (4, 24):
        assert spans[(tasks, "rdma")] <= spans[(tasks, "local")]
        assert spans[(tasks, "rdma")] <= spans[(tasks, "lustre")]
    # Lustre's fixed share degrades with parallelism relative to the
    # node-local transport (the medium-workload caveat of §II)
    lustre_ratio = spans[(24, "lustre")] / spans[(4, "lustre")]
    local_ratio = spans[(24, "local")] / spans[(4, "local")]
    assert lustre_ratio > local_ratio
    for key, value in spans.items():
        benchmark.extra_info[f"{key[0]}maps/{key[1]}"] = round(value, 1)
    print("\nA5 — shuffle transport, makespan (s)\n" + format_table(
        ["map tasks", "local", "lustre", "rdma"],
        [(tasks, spans[(tasks, "local")], spans[(tasks, "lustre")],
          spans[(tasks, "rdma")]) for tasks in (4, 24)]))
