"""Shared driver plumbing for the ``bench_*.py`` microbenchmarks.

Every standalone benchmark repeats the same skeleton: a best-of-rounds
loop over named probes, a JSON baseline written with stable formatting,
and a ``--check`` mode that fails CI when a probe regresses past a
tolerance.  This module centralizes that skeleton so the individual
files only declare *what* they measure:

* :func:`run_rounds` — best-of-``rounds`` over ``{key: (probe, mode)}``
  specs, where ``mode`` is ``"max"`` (throughput, higher is better) or
  ``"min"`` (wall seconds, lower is better).
* :func:`check_against` — compare results to a committed baseline;
  every failure line names the offending metric, the measured value,
  the allowed bound *and the baseline value*, so a red CI run says
  exactly which probe moved and from where.
* :func:`write_baseline` — the committed-JSON emitter (sorted keys,
  2-space indent, trailing newline) shared by every baseline file.
* :func:`bench_main` — the argparse driver behind every benchmark's
  ``main()``: ``--rounds``, ``--out``, ``--check``, ``--tolerance``.

Baselines are machine-dependent; they exist to make *relative* movement
visible from PR to PR on comparable hardware.
"""

from __future__ import annotations

import argparse
import json
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

#: One probe: a zero-argument callable returning a float, plus the
#: direction in which bigger numbers are better ("max") or worse
#: ("min").
ProbeSpec = Tuple[Callable[[], float], str]

#: The named latency percentiles baselines carry (p50/p95/p99).
PERCENTILES = (50, 95, 99)


def percentile_keys(prefix: str,
                    percentiles: Iterable[float] = PERCENTILES
                    ) -> Tuple[str, ...]:
    """Baseline key names for ``prefix`` (``prefix_p50`` ...) — feed
    these to ``check_against(..., lower_is_better=...)``."""
    return tuple(f"{prefix}_p{p:g}" for p in percentiles)


def percentile_results(prefix: str, histogram,
                       percentiles: Iterable[float] = PERCENTILES
                       ) -> Dict[str, float]:
    """``{prefix}_p50``/... keys from a telemetry histogram.

    ``histogram`` is a :class:`repro.telemetry.metrics.Histogram` (or
    anything with its ``percentiles``) — empty histograms emit 0.0 so
    the baseline stays fully populated.
    """
    out = {}
    for p, value in histogram.percentiles(tuple(percentiles)).items():
        out[f"{prefix}_p{p:g}"] = 0.0 if value is None else float(value)
    return out


def run_rounds(probes: Mapping[str, ProbeSpec], rounds: int) -> dict:
    """Best-of-``rounds`` for each probe (filters scheduler noise).

    Probes run in declaration order within each round, so interleaving
    (and therefore cache warmth) matches across rounds.
    """
    results: dict = {}
    for key, (_, mode) in probes.items():
        if mode not in ("max", "min"):
            raise ValueError(f"probe {key!r}: mode must be max/min")
        results[key] = 0.0 if mode == "max" else float("inf")
    for _ in range(rounds):
        for key, (probe, mode) in probes.items():
            value = probe()
            results[key] = (max if mode == "max" else min)(
                results[key], value)
    results["rounds"] = rounds
    return results


def check_against(results: dict, baseline: dict, tolerance: float,
                  lower_is_better: Iterable[str] = (),
                  allow_missing: bool = False) -> list:
    """Baseline metrics regressed by more than ``tolerance``.

    Returns human-readable failure lines, each naming the metric, the
    measured value, the violated bound and the baseline value.  Keys in
    ``lower_is_better`` fail on *increases* past the tolerance (wall
    times); everything else fails on decreases (throughputs).  With
    ``allow_missing`` baseline keys absent from ``results`` are skipped
    (for partial runs, e.g. CI running only a benchmark's smallest
    size); otherwise a missing key is itself a failure.
    """
    lower = set(lower_is_better)
    failures = []
    for key, base in sorted(baseline.items()):
        if key == "rounds" or not isinstance(base, (int, float)) \
                or isinstance(base, bool):
            continue
        measured = results.get(key)
        if measured is None:
            if not allow_missing:
                failures.append(
                    f"{key}: missing from results (baseline {base:,.0f})")
        elif key in lower:
            ceiling = base * (1.0 + tolerance)
            if measured > ceiling:
                failures.append(
                    f"{key}: measured {measured:,.2f} > allowed "
                    f"{ceiling:,.2f} (baseline {base:,.2f}, tolerance "
                    f"{tolerance:.0%}, lower is better)")
        else:
            floor = base * (1.0 - tolerance)
            if measured < floor:
                failures.append(
                    f"{key}: measured {measured:,.0f} < allowed "
                    f"{floor:,.0f} (baseline {base:,.0f}, tolerance "
                    f"{tolerance:.0%})")
    return failures


def write_baseline(results: dict, path: str) -> None:
    """Write the committed-baseline JSON (stable formatting)."""
    with open(path, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")


def bench_main(argv, *, description: str, baseline_path,
               run: Callable[..., dict], report: Callable[[dict], None],
               lower_is_better: Iterable[str] = (),
               allow_missing: bool = False,
               default_rounds: int = 3,
               extra_args: Optional[Callable] = None,
               run_kwargs: Optional[Callable[[argparse.Namespace],
                                             Dict]] = None) -> int:
    """The shared ``main()``: run, report, then check or write.

    ``run`` receives ``rounds=N`` plus whatever ``run_kwargs(args)``
    returns (benchmark-specific options registered via
    ``extra_args(parser)``).  In ``--check`` mode the exit status is 1
    on any regression and the failure lines name metric and baseline.
    """
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--rounds", type=int, default=default_rounds)
    parser.add_argument("--out", default=str(baseline_path),
                        metavar="FILE",
                        help="baseline path ('-' for stdout only)")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare against a committed baseline "
                             "instead of writing one; exit 1 on "
                             "regression")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional regression in check "
                             "mode")
    if extra_args is not None:
        extra_args(parser)
    args = parser.parse_args(argv)

    kwargs = run_kwargs(args) if run_kwargs is not None else {}
    results = run(rounds=args.rounds, **kwargs)
    report(results)

    if args.check is not None:
        with open(args.check) as fh:
            baseline = json.load(fh)
        failures = check_against(results, baseline, args.tolerance,
                                 lower_is_better=lower_is_better,
                                 allow_missing=allow_missing)
        if failures:
            print("REGRESSION vs baseline:")
            for line in failures:
                print(f"  {line}")
            return 1
        print(f"ok vs {args.check} (tolerance {args.tolerance:.0%})")
        return 0

    if args.out != "-":
        write_baseline(results, args.out)
        print(f"wrote {args.out}")
    return 0
