#!/usr/bin/env python
"""K-Means on HPC vs Hadoop-on-HPC (the paper's Figure 6, one cell).

Runs the same K-Means decomposition (map Compute-Units + reduce
Compute-Unit, 2 iterations) twice on simulated Stampede:

* plain RADICAL-Pilot — tasks do their bulk I/O against the shared
  Lustre filesystem;
* RADICAL-Pilot-YARN (Mode I) — the agent bootstraps HDFS+YARN on the
  allocation, units run as YARN applications using node-local disks.

The application code is identical — only the pilot's agent
configuration changes, which is the paper's central point.  Centroids
are verified against the single-process NumPy reference.

Run:  python examples/kmeans_hadoop_on_hpc.py
"""

import numpy as np

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import run_kmeans_pilot
from repro.experiments.calibration import (
    CALIBRATED_KMEANS_COST,
    agent_config,
)
from repro.experiments.harness import Testbed

POINTS, CLUSTERS, NTASKS, NODES = 1_000_000, 50, 16, 2


def run_one(flavor: str, lrm: str):
    testbed = Testbed("stampede", num_nodes=NODES)
    pilot, t_submit, t_active = testbed.start_pilot(
        nodes=NODES, agent_config=agent_config(lrm))
    data = generate_points(POINTS, CLUSTERS, seed=7)
    out = {}

    def workload():
        centroids, units = yield from run_kmeans_pilot(
            testbed.umgr, data, CLUSTERS, ntasks=NTASKS, iterations=2,
            cost=CALIBRATED_KMEANS_COST)
        out["centroids"] = centroids

    t0 = testbed.env.now
    testbed.run(workload())
    span = testbed.env.now - t0
    setup = pilot.agent_info["lrm_setup_seconds"]

    expected = kmeans_reference(data, CLUSTERS, iterations=2)
    ok = np.allclose(out["centroids"], expected)
    print(f"{flavor:22s} pilot_up={t_active - t_submit:6.1f}s  "
          f"hadoop_setup={setup:5.1f}s  kmeans={span:7.1f}s  "
          f"centroids {'match reference' if ok else 'WRONG'}")
    return span + (setup if lrm == "yarn" else 0.0)


def main():
    print(f"K-Means: {POINTS:,} points / {CLUSTERS} clusters / "
          f"{NTASKS} tasks on {NODES} Stampede nodes, 2 iterations\n")
    t_rp = run_one("RADICAL-Pilot", "fork")
    t_yarn = run_one("RADICAL-Pilot-YARN", "yarn")
    delta = (t_rp - t_yarn) / t_rp * 100
    print(f"\ntime-to-completion: RP {t_rp:.0f}s vs RP-YARN {t_yarn:.0f}s "
          f"({delta:+.1f}% for YARN, incl. its cluster bootstrap)")


if __name__ == "__main__":
    main()
