#!/usr/bin/env python
"""SAGA-Hadoop: deploy YARN and Spark clusters on HPC (paper §III-A).

The light-weight Mode I path without the full Pilot machinery, shown
for both framework plugins:

1. YARN: spawn HDFS+YARN on a SLURM allocation, run a MapReduce
   word-count over HDFS, stop the cluster;
2. Spark: spawn a standalone Spark cluster, run an RDD pipeline
   (word-count + a K-Means round), stop the cluster.

Run:  python examples/saga_hadoop_spark.py
"""

import numpy as np

from repro.analytics import generate_points, kmeans_reference
from repro.analytics.kmeans import run_kmeans_spark
from repro.cluster import stampede
from repro.hadoop_deploy import SagaHadoop
from repro.mapreduce import MapReduceJob, MRJobSpec
from repro.saga import Registry, Site
from repro.sim import Environment
from repro.spark import SparkConf

LINES = ["the quick brown fox jumps over the lazy dog",
         "the dog barks", "the fox runs", "quick quick fox"]


def yarn_demo(env, registry):
    print("== SAGA-Hadoop: YARN plugin ==")
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="yarn", nodes=2, walltime=120)

    def driver():
        yield from tool.start()
        metrics = tool.yarn.resource_manager.cluster_metrics()
        print(f"[{env.now:7.1f}s] cluster up: "
              f"{metrics['activeNodes']} NMs, {metrics['totalMB']} MB, "
              f"{metrics['totalVirtualCores']} vcores")

        # load the corpus into HDFS (one word per record)
        words = [w for line in LINES for w in line.split()]
        client = tool.hdfs.client(tool.hdfs.master_node.name)
        yield env.process(client.put("/corpus", 64.0 * len(words),
                                     payload_slices=[words]))

        job = MapReduceJob(env, MRJobSpec(
            name="wordcount", input_path="/corpus", output_path="/out",
            mapper=lambda word: [(word, 1)],
            reducer=lambda word, counts: [(word, sum(counts))],
            num_reducers=1), tool.hdfs)
        output = yield from job.run_on_yarn(tool.yarn)
        counts = dict(output[0])
        top = sorted(counts.items(), key=lambda kv: -kv[1])[:3]
        print(f"[{env.now:7.1f}s] wordcount done "
              f"({job.counters.maps_launched} maps, "
              f"{job.counters.reduces_launched} reduce): top={top}")
        tool.stop()
        yield tool.stopped
        print(f"[{env.now:7.1f}s] cluster stopped")

    env.run(env.process(driver()))


def spark_demo(env, registry):
    print("\n== SAGA-Hadoop: Spark plugin ==")
    tool = SagaHadoop(env, registry, "slurm://stampede",
                      framework="spark", nodes=2, walltime=120)

    def driver():
        yield from tool.start()
        print(f"[{env.now:7.1f}s] Spark master up, "
              f"{tool.spark.master.total_cores} worker cores")
        ctx = yield from tool.spark.context(SparkConf(
            num_executors=2, executor_cores=4))

        counts = dict((yield from (
            ctx.parallelize(LINES, 2)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect())))
        print(f"[{env.now:7.1f}s] RDD wordcount: 'the'={counts['the']} "
              f"'fox'={counts['fox']} 'quick'={counts['quick']}")

        points = generate_points(2000, 8, seed=3)
        centroids = yield from run_kmeans_spark(ctx, points, 8,
                                                iterations=2,
                                                num_partitions=4)
        ok = np.allclose(centroids,
                         kmeans_reference(points, 8, iterations=2))
        print(f"[{env.now:7.1f}s] Spark K-Means: centroids "
              f"{'match reference' if ok else 'WRONG'}")
        ctx.stop()
        tool.stop()
        yield tool.stopped
        print(f"[{env.now:7.1f}s] cluster stopped")

    env.run(env.process(driver()))


def main():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=3)))
    yarn_demo(env, registry)
    spark_demo(env, registry)


if __name__ == "__main__":
    main()
