#!/usr/bin/env python
"""Quickstart: a pilot on (simulated) Stampede running Compute-Units.

The canonical RADICAL-Pilot hello-world, against the simulated
testbed: build a site, submit a pilot through SAGA/SLURM, wait for the
agent to come up, run a bag of Compute-Units (each with modeled cost
*and* a real Python payload), and print what came back.

Run:  python examples/quickstart.py
"""

from repro.cluster import stampede
from repro.api import (
    AgentConfig,
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
)
from repro.saga import Registry, Site
from repro.sim import Environment


def main():
    # --- the simulated world: one Stampede-like machine behind SLURM ---
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2), rms_kind="slurm"))

    # --- the RADICAL-Pilot session: managers + shared DB ---
    session = Session(env, registry)
    pmgr = PilotManager(session)
    umgr = UnitManager(session)

    pilot = pmgr.submit_pilot(ComputePilotDescription(
        resource="slurm://stampede",
        nodes=2,
        runtime=60,                      # minutes, as in RP
        agent_config=AgentConfig(lrm="fork")))
    umgr.add_pilots(pilot)

    def application():
        yield pilot.wait(PilotState.ACTIVE)
        print(f"[{env.now:8.1f}s] pilot ACTIVE on "
              f"{pilot.agent_info['cores']} cores "
              f"({', '.join(pilot.agent_info['nodes'])})")

        units = umgr.submit_units([
            ComputeUnitDescription(
                executable="/bin/echo",
                arguments=(f"hello-{i}",),
                cores=1,
                cpu_seconds=30.0,            # modeled compute
                input_bytes=50e6,            # modeled I/O (Lustre)
                function=lambda i=i: i * i)  # real payload
            for i in range(8)
        ])
        print(f"[{env.now:8.1f}s] submitted {len(units)} units")
        yield umgr.wait_units(units)
        for unit in units:
            print(f"[{env.now:8.1f}s] {unit.uid}: {unit.state.value:6s} "
                  f"result={unit.result}  startup={unit.startup_time:.1f}s")

        pmgr.cancel_pilot(pilot.uid)
        yield pilot.wait()
        print(f"[{env.now:8.1f}s] pilot final state: {pilot.state.value}")

    env.run(env.process(application()))


if __name__ == "__main__":
    main()
