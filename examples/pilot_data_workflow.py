#!/usr/bin/env python
"""Pilot-Data: data-aware scheduling across two machines.

The Pilot-Data abstraction (paper §II) pairs with Pilot-Compute: data
lives in Pilot-Data storage allocations, and the Compute-Data-Service
schedules Compute-Units *where their inputs already are*, replicating
datasets across sites only when it must.

This example runs pilots on both simulated machines (Stampede and
Wrangler), puts a large trajectory dataset on Wrangler and a small
parameter set on Stampede, and submits analysis units — watching the
CDS send each unit to the site holding the bulk of its bytes, and
paying the WAN only when data genuinely has to move.

Run:  python examples/pilot_data_workflow.py
"""

from repro.cluster import stampede, wrangler
from repro.api import (
    ComputeDataService,
    ComputePilotDescription,
    ComputeUnitDescription,
    DataUnitDescription,
    PilotDataDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
)
from repro.experiments.calibration import agent_config
from repro.saga import Registry, Site
from repro.sim import Environment

MB = 1024 ** 2


def main():
    env = Environment()
    registry = Registry()
    registry.register(Site(env, stampede(num_nodes=2)))
    registry.register(Site(env, wrangler(num_nodes=2),
                           hostname="wrangler"))
    session = Session(env, registry)
    pmgr, umgr = PilotManager(session), UnitManager(session)

    pilots = {
        "stampede": pmgr.submit_pilot(ComputePilotDescription(
            resource="slurm://stampede", nodes=1, runtime=120,
            agent_config=agent_config("fork"))),
        "wrangler": pmgr.submit_pilot(ComputePilotDescription(
            resource="slurm://wrangler", nodes=1, runtime=120,
            agent_config=agent_config("fork"))),
    }
    umgr.add_pilots(list(pilots.values()))
    cds = ComputeDataService(session, umgr, inter_site_bw=25 * MB)
    pd = {
        "stampede": cds.create_pilot_data(PilotDataDescription(
            resource="slurm://stampede", size_bytes=10_000 * MB)),
        "wrangler": cds.create_pilot_data(PilotDataDescription(
            resource="slurm://wrangler", size_bytes=10_000 * MB)),
    }

    def workflow():
        yield env.all_of([p.wait(PilotState.ACTIVE)
                          for p in pilots.values()])
        print(f"[{env.now:7.1f}s] pilots ACTIVE on both machines")

        trajectory = yield from cds.submit_data_unit(
            DataUnitDescription(name="trajectory", files=(
                ("frames-0.dat", 900 * MB), ("frames-1.dat", 900 * MB))),
            pd["wrangler"])
        params = yield from cds.submit_data_unit(
            DataUnitDescription(name="params",
                                files=(("config.json", 1 * MB),)),
            pd["stampede"])
        print(f"[{env.now:7.1f}s] trajectory (1.8 GB) on wrangler, "
              f"params (1 MB) on stampede")

        # analysis reads both; the bytes say: run on wrangler
        unit = yield from cds.submit_compute_unit(
            ComputeUnitDescription(
                executable="analyze.py", cores=4, cpu_seconds=600.0,
                function=lambda: "analysis-complete"),
            input_data=[trajectory, params])
        yield umgr.wait_units([unit])
        site = ("wrangler" if unit.pilot_uid == pilots["wrangler"].uid
                else "stampede")
        print(f"[{env.now:7.1f}s] analysis unit ran on {site} "
              f"(data-affinity), result: {unit.result}")
        print(f"          params replicated to wrangler: "
              f"{params.located_on('wrangler') is not None} "
              f"(1 MB over the WAN, not 1.8 GB)")

        # a compute-only unit lands wherever round-robin says; but a
        # second trajectory pass stays data-local again
        unit2 = yield from cds.submit_compute_unit(
            ComputeUnitDescription(executable="recompute.py", cores=2,
                                   cpu_seconds=120.0),
            input_data=[trajectory])
        yield umgr.wait_units([unit2])
        site2 = ("wrangler" if unit2.pilot_uid == pilots["wrangler"].uid
                 else "stampede")
        print(f"[{env.now:7.1f}s] second pass also on {site2}; "
              f"trajectory replicas: {len(trajectory.replicas)} "
              f"(never moved)")

    env.run(env.process(workflow()))


if __name__ == "__main__":
    main()
