#!/usr/bin/env python
"""Coupled simulation + analytics pipeline (the paper's motivation).

Bio-molecular pipelines interleave HPC simulation stages with
data-intensive analysis (paper §I and §V).  This example runs both
stages under ONE resource layer — a single pilot:

1. *simulation stage*: multi-core "MD" Compute-Units, each producing a
   trajectory segment (synthetic random-walk physics, real NumPy data);
2. *analysis stage*: chunked trajectory-analysis Compute-Units
   computing RMSD and radius of gyration over the concatenated
   trajectory — the MDAnalysis/CPPTraj-style workload the paper cites.

Run:  python examples/md_trajectory_pipeline.py
"""

import numpy as np

from repro.analytics import (
    radius_of_gyration,
    rmsd_to_reference,
    run_trajectory_analysis,
    synthesize_trajectory,
)
from repro.api import ComputeUnitDescription
from repro.experiments.calibration import agent_config
from repro.experiments.harness import Testbed

SEGMENTS = 4          # parallel MD simulations
FRAMES_PER_SEGMENT = 50
ATOMS = 64


def main():
    testbed = Testbed("stampede", num_nodes=2)
    pilot, _, _ = testbed.start_pilot(
        nodes=2, agent_config=agent_config("fork"))
    env, umgr = testbed.env, testbed.umgr
    print(f"[{env.now:7.1f}s] pilot ACTIVE "
          f"({pilot.agent_info['cores']} cores)")

    def pipeline():
        # ---- stage 1: simulation (MPI-style multi-core units) ----
        sim_units = umgr.submit_units([
            ComputeUnitDescription(
                executable="md_engine",
                arguments=(f"--segment={i}",),
                name=f"md-seg{i}",
                cores=4, launch_method="mpiexec",
                cpu_seconds=1200.0,          # modeled MD compute
                output_bytes=ATOMS * 3 * 8 * FRAMES_PER_SEGMENT,
                function=synthesize_trajectory,
                args=(FRAMES_PER_SEGMENT, ATOMS),
                kwargs={"seed": 100 + i})
            for i in range(SEGMENTS)
        ])
        yield umgr.wait_units(sim_units)
        print(f"[{env.now:7.1f}s] simulation stage done "
              f"({SEGMENTS} segments x {FRAMES_PER_SEGMENT} frames)")
        trajectory = np.concatenate([u.result for u in sim_units])

        # ---- stage 2: analysis (same pilot, no re-queueing) ----
        rmsd, rg = yield from run_trajectory_analysis(
            umgr, trajectory, ntasks=6)
        print(f"[{env.now:7.1f}s] analysis stage done "
              f"({len(rmsd)} frames)")

        # validate against the serial reference
        assert np.allclose(rmsd, rmsd_to_reference(trajectory,
                                                   trajectory[0]))
        assert np.allclose(rg, radius_of_gyration(trajectory))
        print(f"          RMSD:  first={rmsd[0]:.4f}  last={rmsd[-1]:.4f} "
              f" max={rmsd.max():.4f}")
        print(f"          Rg:    mean={rg.mean():.4f}  std={rg.std():.4f}")
        print("          (validated against the serial NumPy reference)")

    testbed.run(pipeline())


if __name__ == "__main__":
    main()
