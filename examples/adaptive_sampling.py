#!/usr/bin/env python
"""Adaptive sampling: analysis steering the next simulations.

The paper's opening motivation (§I): "Often times the data generated
needs to be analyzed so as to determine the next set of simulation
configurations."  This example runs that loop on one pilot: batches of
random-walk "MD" units sample a reaction coordinate; after each batch
the pooled samples are analyzed and the next batch is seeded at the
least-explored regions.  Coverage climbs round over round — the whole
point of keeping simulation and analysis under one resource layer.

Run:  python examples/adaptive_sampling.py
"""

from repro.analytics import coverage, run_adaptive_sampling
from repro.api import ComputePilotDescription, PilotState
from repro.experiments.calibration import agent_config
from repro.experiments.harness import Testbed


def main():
    testbed = Testbed("wrangler", num_nodes=1)
    pilot, _, _ = testbed.start_pilot(
        nodes=1, agent_config=agent_config("fork"))
    env = testbed.env
    print(f"[{env.now:7.1f}s] pilot ACTIVE "
          f"({pilot.agent_info['cores']} cores on wrangler)")

    def loop():
        samples, history = yield from run_adaptive_sampling(
            testbed.umgr, rounds=4, walkers=6, steps_per_walker=500,
            cpu_seconds_per_step=0.4)
        for i, c in enumerate(history):
            print(f"[{env.now:7.1f}s] round {i + 1}: cumulative "
                  f"coordinate coverage {c * 100:5.1f}%")
        print(f"\n{len(samples):,} samples total; final coverage "
              f"{history[-1] * 100:.1f}% "
              f"(round 1 alone reached {history[0] * 100:.1f}%)")

    testbed.run(loop())


if __name__ == "__main__":
    main()
