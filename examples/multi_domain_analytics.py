#!/usr/bin/env python
"""Multi-domain analytics on one deployment (paper §I's domain list).

"...the scientific domains of bio-molecular dynamics, genomics and
network science need to couple traditional computing with Hadoop/Spark
based analysis."  This example serves all three from a single
SAGA-Hadoop-style deployment:

1. genomics — k-mer counting as a MapReduce job over HDFS;
2. network science — triangle counting as a Spark RDD pipeline;
3. bio-molecular dynamics — an HPC "simulation" streamed directly into
   an analysis consumer over the §V streaming channel (no persist +
   re-read round-trip).

All three computations are real and validated inline against their
single-process references (Counter, networkx, NumPy).

Run:  python examples/multi_domain_analytics.py
"""

import numpy as np

from repro.analytics import (
    count_kmers_mapreduce,
    count_kmers_reference,
    count_triangles_reference,
    count_triangles_spark,
    generate_graph,
    generate_reads,
    radius_of_gyration,
    synthesize_trajectory,
)
from repro.cluster import Machine, stampede
from repro.core.streaming import StreamChannel, stream_pipeline
from repro.hdfs import HdfsCluster
from repro.sim import Environment, SeedSequenceRegistry
from repro.spark import SparkConf, SparkStandaloneCluster
from repro.yarn import YarnCluster


def main():
    env = Environment()
    machine = Machine(env, stampede(num_nodes=3))
    hdfs = HdfsCluster(env, machine, machine.nodes, replication=2,
                       rng=SeedSequenceRegistry(1).stream("d"))
    yarn = YarnCluster(env, machine, machine.nodes)
    spark = SparkStandaloneCluster(env, machine, machine.nodes)

    def workflow():
        yield env.process(hdfs.start())
        yield env.process(yarn.start())
        yield env.process(spark.start())
        print(f"[{env.now:7.1f}s] HDFS + YARN + Spark up on 3 nodes")

        # ---- genomics: k-mer counting on MapReduce ----
        reads = generate_reads(200, read_length=80, seed=11)
        counts, job = yield from count_kmers_mapreduce(
            env, hdfs, yarn, reads, k=8)
        ok = counts == count_kmers_reference(reads, 8)
        print(f"[{env.now:7.1f}s] genomics: {len(counts):,} distinct "
              f"8-mers from {len(reads)} reads "
              f"({job.counters.maps_launched} maps; "
              f"{'matches Counter' if ok else 'WRONG'})")

        # ---- network science: triangles on Spark ----
        edges = generate_graph(200, 1200, seed=4)
        ctx = yield from spark.context(SparkConf(
            num_executors=3, executor_cores=4))
        triangles = yield from count_triangles_spark(ctx, edges, 6)
        truth = count_triangles_reference(edges)
        print(f"[{env.now:7.1f}s] network science: {triangles:,} "
              f"triangles in a {len(edges):,}-edge graph "
              f"({'matches networkx' if triangles == truth else 'WRONG'})")

        # ---- MD: simulation streamed into analysis (§V) ----
        channel = StreamChannel(env, network=machine.network,
                                src=machine.nodes[0].name,
                                dst=machine.nodes[1].name)
        segments = [synthesize_trajectory(40, 32, seed=100 + i)
                    for i in range(5)]
        work = [(seg, seg.nbytes) for seg in segments]
        rg_means = yield from stream_pipeline(
            env, channel, work,
            consume_chunk=lambda seg: float(radius_of_gyration(seg).mean()))
        serial = [float(radius_of_gyration(seg).mean())
                  for seg in segments]
        ok = np.allclose(rg_means, serial)
        print(f"[{env.now:7.1f}s] MD: {len(segments)} trajectory "
              f"segments streamed into analysis; mean Rg per segment "
              f"{'matches serial' if ok else 'WRONG'} "
              f"({channel.bytes_streamed / 1e6:.1f} MB streamed, "
              f"never persisted)")

    env.run(env.process(workflow()))


if __name__ == "__main__":
    main()
